"""Messages and the communication ledger.

The unit of accounting is the *word*: one scalar (float or integer) equals
one word, and a point of a ``d``-dimensional Euclidean metric equals ``d``
words (the metric's ``words_per_point`` — the paper's ``B``).  This is a
constant-factor rescaling of the paper's "bits", which is all the asymptotic
claims need (see DESIGN.md Substitutions).

Next to the semantic word counts the ledger can carry *wire* bytes: when a
run executes on the cluster backend, every message that physically crossed a
runner socket is stamped with its serialized size (``Message.n_bytes``) and
the backend's frame-level :class:`~repro.cluster.wire.WireLedger` is
attached, so :meth:`CommunicationLedger.summary` reports ``total_bytes`` /
``bytes_by_round`` alongside the words.  On purely in-process backends no
wire ever ran and both report 0 — words stay the backend-invariant currency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import-cycle-free type hint only
    from repro.cluster.wire import WireLedger

COORDINATOR = -1
"""Sentinel party id for the coordinator."""


@dataclass(frozen=True)
class Message:
    """A single message crossing the star network.

    Attributes
    ----------
    sender, receiver:
        Party ids; sites are ``0..s-1`` and the coordinator is
        :data:`COORDINATOR`.
    round_index:
        The synchronous round in which the message was sent (1-based).
    kind:
        Free-form label used by reports (e.g. ``"cost_profile"``,
        ``"local_centers"``).
    words:
        Number of machine words charged for the message.
    payload:
        The actual Python object delivered to the receiver.  Not serialised —
        the simulator only accounts for size via ``words``.
    n_bytes:
        Serialized (raw pickle) size of the payload when it physically
        crossed a wire (cluster backend), ``None`` when it was delivered
        in-process.
    n_bytes_encoded:
        What the same serialized payload costs under the wire codec its
        result frame was encoded with — the per-message twin of the wire
        ledger's raw/encoded split.  ``None`` in-process; equal to
        ``n_bytes`` when the frame kind is uncompressed or the codec did
        not shrink the blob.
    """

    sender: int
    receiver: int
    round_index: int
    kind: str
    words: float
    payload: Any = None
    n_bytes: Optional[int] = None
    n_bytes_encoded: Optional[int] = None

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ValueError(f"message word count must be non-negative, got {self.words}")
        if self.round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {self.round_index}")
        if self.n_bytes is not None and self.n_bytes < 0:
            raise ValueError(f"message byte count must be non-negative, got {self.n_bytes}")
        if self.n_bytes_encoded is not None:
            if self.n_bytes_encoded < 0:
                raise ValueError(
                    f"encoded byte count must be non-negative, got {self.n_bytes_encoded}"
                )
            if self.n_bytes is not None and self.n_bytes_encoded > self.n_bytes:
                raise ValueError(
                    f"encoded byte count ({self.n_bytes_encoded}) cannot exceed the "
                    f"raw serialized size ({self.n_bytes}): codecs never grow a payload"
                )

    @property
    def to_coordinator(self) -> bool:
        """True if the message flows site -> coordinator."""
        return self.receiver == COORDINATOR


@dataclass
class CommunicationLedger:
    """Append-only record of every message sent during a protocol run.

    Per-kind and per-site views are served from lazily built indices: the
    first call to :meth:`words_by_kind` / :meth:`words_by_site` /
    :meth:`filter` (by kind) builds them, after which :meth:`record` and
    :meth:`merge` keep them consistent incrementally — a protocol that polls
    ``filter(kind=...)`` every round no longer rescans the whole history.
    """

    messages: List[Message] = field(default_factory=list)
    #: Frame-level wire accounting, attached when a cluster backend ran
    #: (see :meth:`ensure_wire`).  ``None`` on purely in-process runs.
    wire: Optional["WireLedger"] = field(default=None, repr=False, compare=False)
    _kind_index: Optional[Dict[str, List[Message]]] = field(
        default=None, init=False, repr=False, compare=False
    )
    _site_index: Optional[Dict[int, List[Message]]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def record(self, message: Message) -> None:
        """Append a message to the ledger."""
        self.messages.append(message)
        self._index_message(message)

    def _index_message(self, message: Message) -> None:
        if self._kind_index is not None:
            self._kind_index.setdefault(message.kind, []).append(message)
        if self._site_index is not None and message.to_coordinator:
            self._site_index.setdefault(message.sender, []).append(message)

    def _by_kind(self) -> Dict[str, List[Message]]:
        if self._kind_index is None:
            index: Dict[str, List[Message]] = {}
            for m in self.messages:
                index.setdefault(m.kind, []).append(m)
            self._kind_index = index
        return self._kind_index

    def _by_site(self) -> Dict[int, List[Message]]:
        if self._site_index is None:
            index: Dict[int, List[Message]] = {}
            for m in self.messages:
                if m.to_coordinator:
                    index.setdefault(m.sender, []).append(m)
            self._site_index = index
        return self._site_index

    def ensure_wire(self) -> "WireLedger":
        """The attached wire ledger, creating an empty one on first use."""
        if self.wire is None:
            from repro.cluster.wire import WireLedger

            self.wire = WireLedger()
        return self.wire

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------

    def total_words(self) -> float:
        """Total words across all messages and rounds."""
        return float(sum(m.words for m in self.messages))

    def words_by_round(self) -> Dict[int, float]:
        """Total words per round index."""
        out: Dict[int, float] = {}
        for m in self.messages:
            out[m.round_index] = out.get(m.round_index, 0.0) + m.words
        return out

    def words_by_kind(self) -> Dict[str, float]:
        """Total words per message kind."""
        return {
            kind: float(sum(m.words for m in msgs))
            for kind, msgs in self._by_kind().items()
        }

    def words_by_direction(self) -> Dict[str, float]:
        """Total words split into uplink (site -> coordinator) and downlink."""
        up = sum(m.words for m in self.messages if m.to_coordinator)
        down = sum(m.words for m in self.messages if not m.to_coordinator)
        return {"to_coordinator": float(up), "to_sites": float(down)}

    def words_by_site(self) -> Dict[int, float]:
        """Uplink words contributed by each site."""
        return {
            site: float(sum(m.words for m in msgs))
            for site, msgs in self._by_site().items()
        }

    # ------------------------------------------------------------------
    # Wire bytes (0 unless a wire transport actually ran)
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Total wire bytes of the run.

        The frame-level :attr:`wire` ledger is authoritative when attached
        (it covers dispatch *and* result traffic, headers included);
        otherwise the per-message ``n_bytes`` stamps are summed.  Both are 0
        when no wire transport ran.
        """
        if self.wire is not None:
            return self.wire.total_bytes()
        return int(sum(m.n_bytes or 0 for m in self.messages))

    def bytes_by_round(self) -> Dict[int, int]:
        """Total wire bytes per round (empty/zero when no wire transport ran)."""
        if self.wire is not None:
            return self.wire.bytes_by_round()
        out: Dict[int, int] = {}
        for m in self.messages:
            if m.n_bytes is not None:
                out[m.round_index] = out.get(m.round_index, 0) + m.n_bytes
        return out

    def total_raw_bytes(self) -> int:
        """Pre-codec twin of :meth:`total_bytes` (what the run would cost
        uncompressed); 0 when no wire transport ran."""
        if self.wire is not None:
            return self.wire.total_raw_bytes()
        return int(sum(m.n_bytes or 0 for m in self.messages))

    def uplink_bytes(self) -> Dict[str, int]:
        """Raw vs codec-encoded bytes of the stamped uplink payloads.

        Sums the per-message ``n_bytes``/``n_bytes_encoded`` stamps — the
        message-level view of the compression column (the wire ledger's
        frame totals additionally include dispatch traffic and headers).
        """
        raw = sum(m.n_bytes or 0 for m in self.messages)
        encoded = sum(
            (m.n_bytes_encoded if m.n_bytes_encoded is not None else m.n_bytes) or 0
            for m in self.messages
        )
        return {"raw": int(raw), "encoded": int(encoded)}

    def n_rounds(self) -> int:
        """Largest round index observed (0 if no messages were sent)."""
        return max((m.round_index for m in self.messages), default=0)

    def n_messages(self) -> int:
        """Number of messages recorded."""
        return len(self.messages)

    def filter(self, *, kind: Optional[str] = None, round_index: Optional[int] = None) -> List[Message]:
        """Messages matching the given kind and/or round."""
        out: Iterable[Message]
        if kind is not None:
            out = self._by_kind().get(kind, [])
        else:
            out = self.messages
        if round_index is not None:
            out = (m for m in out if m.round_index == round_index)
        return list(out)

    def merge(self, other: "CommunicationLedger") -> None:
        """Fold another ledger's messages into this one (used by meta-protocols).

        Any lazily built per-kind/per-site indices stay consistent (the
        other ledger's messages are folded into them too, not just into the
        flat list), and an attached wire ledger is merged as well.
        """
        self.messages.extend(other.messages)
        if self._kind_index is not None or self._site_index is not None:
            for message in other.messages:
                self._index_message(message)
        if other.wire is not None:
            self.ensure_wire().merge(other.wire)

    def summary(self) -> Dict[str, Any]:
        """Compact dictionary used by reports and benchmark output.

        The byte entries follow the same precedence as :meth:`total_bytes`:
        when a frame-level :attr:`wire` ledger is attached (a cluster run,
        or ledgers merged from one via :meth:`merge`), ``total_bytes`` and
        ``bytes_by_round`` come from it and cover dispatch *and* result
        frames, headers included — so after merging a cluster ledger into
        an in-process one the summary reports the union of both runs'
        words alongside the cluster run's physical bytes.  ``wire`` holds
        the attached ledger's own summary (with its per-kind and per-host
        breakdowns) or ``None`` when no wire transport ran.
        """
        return {
            "total_words": self.total_words(),
            "total_bytes": self.total_bytes(),
            "total_raw_bytes": self.total_raw_bytes(),
            "rounds": self.n_rounds(),
            "messages": self.n_messages(),
            "by_round": self.words_by_round(),
            "by_direction": self.words_by_direction(),
            "bytes_by_round": self.bytes_by_round(),
            "uplink_bytes": self.uplink_bytes(),
            "wire": self.wire.summary() if self.wire is not None else None,
        }


__all__ = ["COORDINATOR", "Message", "CommunicationLedger"]
