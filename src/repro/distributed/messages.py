"""Messages and the communication ledger.

The unit of accounting is the *word*: one scalar (float or integer) equals
one word, and a point of a ``d``-dimensional Euclidean metric equals ``d``
words (the metric's ``words_per_point`` — the paper's ``B``).  This is a
constant-factor rescaling of the paper's "bits", which is all the asymptotic
claims need (see DESIGN.md Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

COORDINATOR = -1
"""Sentinel party id for the coordinator."""


@dataclass(frozen=True)
class Message:
    """A single message crossing the star network.

    Attributes
    ----------
    sender, receiver:
        Party ids; sites are ``0..s-1`` and the coordinator is
        :data:`COORDINATOR`.
    round_index:
        The synchronous round in which the message was sent (1-based).
    kind:
        Free-form label used by reports (e.g. ``"cost_profile"``,
        ``"local_centers"``).
    words:
        Number of machine words charged for the message.
    payload:
        The actual Python object delivered to the receiver.  Not serialised —
        the simulator only accounts for size via ``words``.
    """

    sender: int
    receiver: int
    round_index: int
    kind: str
    words: float
    payload: Any = None

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ValueError(f"message word count must be non-negative, got {self.words}")
        if self.round_index < 1:
            raise ValueError(f"round_index must be >= 1, got {self.round_index}")

    @property
    def to_coordinator(self) -> bool:
        """True if the message flows site -> coordinator."""
        return self.receiver == COORDINATOR


@dataclass
class CommunicationLedger:
    """Append-only record of every message sent during a protocol run."""

    messages: List[Message] = field(default_factory=list)

    def record(self, message: Message) -> None:
        """Append a message to the ledger."""
        self.messages.append(message)

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------

    def total_words(self) -> float:
        """Total words across all messages and rounds."""
        return float(sum(m.words for m in self.messages))

    def words_by_round(self) -> Dict[int, float]:
        """Total words per round index."""
        out: Dict[int, float] = {}
        for m in self.messages:
            out[m.round_index] = out.get(m.round_index, 0.0) + m.words
        return out

    def words_by_kind(self) -> Dict[str, float]:
        """Total words per message kind."""
        out: Dict[str, float] = {}
        for m in self.messages:
            out[m.kind] = out.get(m.kind, 0.0) + m.words
        return out

    def words_by_direction(self) -> Dict[str, float]:
        """Total words split into uplink (site -> coordinator) and downlink."""
        up = sum(m.words for m in self.messages if m.to_coordinator)
        down = sum(m.words for m in self.messages if not m.to_coordinator)
        return {"to_coordinator": float(up), "to_sites": float(down)}

    def words_by_site(self) -> Dict[int, float]:
        """Uplink words contributed by each site."""
        out: Dict[int, float] = {}
        for m in self.messages:
            if m.to_coordinator:
                out[m.sender] = out.get(m.sender, 0.0) + m.words
        return out

    def n_rounds(self) -> int:
        """Largest round index observed (0 if no messages were sent)."""
        return max((m.round_index for m in self.messages), default=0)

    def n_messages(self) -> int:
        """Number of messages recorded."""
        return len(self.messages)

    def filter(self, *, kind: Optional[str] = None, round_index: Optional[int] = None) -> List[Message]:
        """Messages matching the given kind and/or round."""
        out: Iterable[Message] = self.messages
        if kind is not None:
            out = (m for m in out if m.kind == kind)
        if round_index is not None:
            out = (m for m in out if m.round_index == round_index)
        return list(out)

    def merge(self, other: "CommunicationLedger") -> None:
        """Fold another ledger's messages into this one (used by meta-protocols)."""
        self.messages.extend(other.messages)

    def summary(self) -> Dict[str, Any]:
        """Compact dictionary used by reports and benchmark output."""
        return {
            "total_words": self.total_words(),
            "rounds": self.n_rounds(),
            "messages": self.n_messages(),
            "by_round": self.words_by_round(),
            "by_direction": self.words_by_direction(),
        }


__all__ = ["COORDINATOR", "Message", "CommunicationLedger"]
