"""The safe 1-round protocol: every site ships ``t`` potential outliers.

Without the budget-allocation machinery a site cannot know how many of the
``t`` global outliers live in its shard, so the only safe choice is to solve
its local problem with the *full* budget ``t`` and ship all ``t`` unassigned
points (plus its ``2k`` weighted centers).  This is the 1-round row of
Table 2 — ``Õ((sk + st) B)`` communication — and, for the center objective,
the regime of Malkomes et al. [19].  Solution quality is essentially the same
as Algorithm 1's (it is the communication that is ``s`` times larger), which
is exactly the comparison the Table 2 benchmarks report.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.combine import combine_preclusters, summarize_local_solution
from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.distributed.result import DistributedResult
from repro.metrics.cost_matrix import build_cost_matrix, validate_objective
from repro.sequential.gonzalez import gonzalez
from repro.sequential.local_search import local_search_partial
from repro.sequential.assignment import assign_with_outliers
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def one_round_protocol(
    instance: DistributedInstance,
    *,
    epsilon: float = 0.5,
    local_center_factor: int = 2,
    rng: RngLike = None,
    local_solver_kwargs: Optional[dict] = None,
    coordinator_solver_kwargs: Optional[dict] = None,
    realize: bool = True,
) -> DistributedResult:
    """Run the 1-round baseline on a distributed instance (any objective).

    Parameters
    ----------
    instance:
        The partitioned input.
    epsilon:
        Outlier relaxation of the coordinator's final solve (median/means
        only; the center objective uses exactly ``t``).
    local_center_factor:
        Local centers opened per site relative to ``k``.
    """
    objective = validate_objective(instance.objective)
    k, t = instance.k, instance.t
    metric = instance.metric
    words_per_point = instance.words_per_point()
    network = StarNetwork(instance)
    generator = ensure_rng(rng)
    site_rngs = spawn_rngs(generator, network.n_sites)
    local_kwargs = dict(local_solver_kwargs or {})

    network.next_round()
    summaries = []
    for site, site_rng in zip(network.sites, site_rngs):
        with site.timer.measure("local_solve"):
            local_indices = np.arange(site.n_points)
            local_k = min(local_center_factor * k, site.n_points)
            t_local = min(t, max(site.n_points - 1, 0))
            if objective == "center":
                traversal = gonzalez(site.local_metric, m=min(site.n_points, local_k), rng=site_rng)
                local_costs = build_cost_matrix(site.local_metric, local_indices, local_indices, objective)
                solution = assign_with_outliers(
                    local_costs, traversal.ordering, t_local, objective="center"
                )
            else:
                local_costs = build_cost_matrix(site.local_metric, local_indices, local_indices, objective)
                solution = local_search_partial(
                    local_costs, local_k, t_local, objective=objective, rng=site_rng, **local_kwargs
                )
            summary = summarize_local_solution(site, solution)
        summaries.append(summary)
        site.state["local_solution"] = solution
        network.send_to_coordinator(
            site.site_id,
            "local_solution",
            summary,
            words=summary.transmitted_words(words_per_point),
        )

    with network.coordinator.timer.measure("final_solve"):
        combine = combine_preclusters(
            metric,
            summaries,
            k,
            t,
            objective=objective,
            epsilon=epsilon,
            relax="outliers",
            rng=generator,
            realize=realize,
            coordinator_solver_kwargs=coordinator_solver_kwargs,
        )

    if objective == "center":
        outlier_budget = float(t)
    else:
        outlier_budget = float(math.floor((1.0 + epsilon) * t + 1e-9))

    return DistributedResult(
        centers=combine.centers_global,
        outlier_budget=outlier_budget,
        objective=objective,
        cost=float(combine.coordinator_solution.cost),
        ledger=network.ledger,
        rounds=network.current_round,
        outliers=combine.realized_outliers if realize else combine.explicit_outliers,
        site_time=network.site_times(),
        coordinator_time=network.coordinator_time(),
        coordinator_solution=combine.coordinator_solution,
        metadata={
            "algorithm": "one_round_baseline",
            "epsilon": float(epsilon),
            "t_shipped_per_site": [
                int(s.state["local_solution"].outlier_indices.size) for s in network.sites
            ],
            "n_coordinator_demands": int(combine.demand_points.size),
            "realized_assignment": combine.realized_assignment,
        },
    )


__all__ = ["one_round_protocol"]
