"""The naive send-everything protocol.

Every site transmits its entire shard (``n_i * B`` words) and the coordinator
solves the problem on the full data exactly as a single machine would.  It is
the quality gold standard among the distributed runs (it sees everything) and
the communication worst case (``n B`` words, independent of ``k`` and ``t``),
so it anchors both axes of every comparison plot.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.distributed.instance import DistributedInstance
from repro.distributed.network import StarNetwork
from repro.distributed.result import DistributedResult
from repro.metrics.cost_matrix import build_cost_matrix, validate_objective
from repro.sequential.bicriteria import bicriteria_solve
from repro.sequential.kcenter_outliers import kcenter_with_outliers
from repro.utils.rng import RngLike, ensure_rng


def send_all_protocol(
    instance: DistributedInstance,
    *,
    epsilon: float = 0.5,
    rng: RngLike = None,
    coordinator_solver_kwargs: Optional[dict] = None,
) -> DistributedResult:
    """Ship every point to the coordinator and solve centrally (1 round)."""
    objective = validate_objective(instance.objective)
    k, t = instance.k, instance.t
    metric = instance.metric
    words_per_point = instance.words_per_point()
    network = StarNetwork(instance)
    generator = ensure_rng(rng)
    solver_kwargs = dict(coordinator_solver_kwargs or {})

    network.next_round()
    for site in network.sites:
        network.send_to_coordinator(
            site.site_id,
            "all_points",
            site.shard,
            words=float(site.n_points * words_per_point),
        )

    all_points = np.concatenate([m.payload for m in network.coordinator.inbox])
    with network.coordinator.timer.measure("final_solve"):
        cost_matrix = build_cost_matrix(metric, all_points, all_points, objective)
        if objective == "center":
            solution = kcenter_with_outliers(cost_matrix, k, t, **solver_kwargs)
            outlier_budget = float(t)
        else:
            solution = bicriteria_solve(
                cost_matrix, k, t, epsilon=epsilon, relax="outliers",
                objective=objective, rng=generator, **solver_kwargs,
            )
            outlier_budget = float(math.floor((1.0 + epsilon) * t + 1e-9))

    centers_global = all_points[solution.centers]
    outliers_global = all_points[solution.outlier_indices]

    return DistributedResult(
        centers=centers_global,
        outlier_budget=outlier_budget,
        objective=objective,
        cost=float(solution.cost),
        ledger=network.ledger,
        rounds=network.current_round,
        outliers=np.sort(outliers_global),
        site_time=network.site_times(),
        coordinator_time=network.coordinator_time(),
        coordinator_solution=solution,
        metadata={
            "algorithm": "send_all_baseline",
            "epsilon": float(epsilon),
        },
    )


__all__ = ["send_all_protocol"]
