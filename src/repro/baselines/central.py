"""Strong centralized reference solutions.

The paper's guarantees are stated against the (intractable) optimum; the
benchmarks use the best solution found by a beefed-up single-machine solver —
several restarts of the outlier-aware local search (median/means) or the full
Charikar greedy (center) on the complete data — as the practical stand-in for
``Copt``.  Every measured "approximation ratio" in ``EXPERIMENTS.md`` is
relative to this reference, so ratios below 1 are possible (the distributed
algorithm may beat the reference) and ratios slightly above the paper's
constants indicate heuristic slack rather than a broken bound.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.cost_matrix import build_cost_matrix, validate_objective
from repro.sequential.kcenter_outliers import kcenter_with_outliers
from repro.sequential.local_search import local_search_partial
from repro.sequential.solution import ClusterSolution
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs


def centralized_reference(
    metric: MetricSpace,
    k: int,
    t: int,
    *,
    objective: str = "median",
    indices: Optional[Sequence[int]] = None,
    n_restarts: int = 3,
    max_iter: int = 80,
    sample_size: Optional[int] = 48,
    rng: RngLike = None,
    **solver_kwargs,
) -> ClusterSolution:
    """Best-of-``n_restarts`` single-machine ``(k, t)`` solution on the full data.

    Parameters
    ----------
    metric:
        The global metric space.
    k, t:
        Center and outlier budgets (the reference uses exactly ``t`` outliers,
        i.e. no bicriteria relaxation).
    objective:
        ``"median"``, ``"means"`` or ``"center"``.
    indices:
        Optional subset of points to solve on (defaults to all points).
    n_restarts:
        Number of independent local-search restarts (median/means only).
    max_iter, sample_size:
        Local-search controls; ``sample_size=None`` evaluates every facility
        as an insertion candidate each round (slow but thorough).
    rng:
        Seed or generator.

    Returns
    -------
    ClusterSolution
        Centers and assignment are expressed in *global* point indices when
        ``indices`` is None, otherwise as positions within ``indices``.
    """
    obj = validate_objective(objective)
    idx = np.arange(len(metric)) if indices is None else np.asarray(indices, dtype=int)
    cost_matrix = build_cost_matrix(metric, idx, idx, obj)

    if obj == "center":
        solution = kcenter_with_outliers(cost_matrix, k, t, **solver_kwargs)
        solution.metadata["reference"] = "charikar_full"
        return _to_global(solution, idx, indices is None)

    generator = ensure_rng(rng)
    rngs = spawn_rngs(generator, max(1, n_restarts))
    best: Optional[ClusterSolution] = None
    for restart_rng in rngs:
        candidate = local_search_partial(
            cost_matrix,
            k,
            t,
            objective=obj,
            max_iter=max_iter,
            sample_size=sample_size,
            rng=restart_rng,
            **solver_kwargs,
        )
        if best is None or candidate.cost < best.cost:
            best = candidate
    assert best is not None
    best.metadata["reference"] = "local_search_multi_restart"
    best.metadata["n_restarts"] = int(n_restarts)
    return _to_global(best, idx, indices is None)


def _to_global(solution: ClusterSolution, idx: np.ndarray, already_global: bool) -> ClusterSolution:
    """Relabel a solution computed on ``idx`` back to global indices."""
    if already_global and np.array_equal(idx, np.arange(idx.size)):
        return solution
    return solution.relabel(idx)


__all__ = ["centralized_reference"]
