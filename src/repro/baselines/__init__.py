"""Baselines the paper's algorithms are compared against.

* :func:`centralized_reference` — a strong single-machine solution used as
  the denominator of every measured approximation ratio.
* :func:`one_round_protocol` — the prior-art style 1-round protocol in which
  every site plays it safe and ships ``t`` potential outliers
  (``Õ((sk + st) B)`` communication; Table 2's 1-round rows and the regime
  of Malkomes et al. for the center objective).
* :func:`send_all_protocol` — the naive protocol that ships every point to
  the coordinator (``n B`` words), which is simultaneously the communication
  upper bound and the solution-quality gold standard for the distributed
  comparison.
"""

from repro.baselines.central import centralized_reference
from repro.baselines.one_round import one_round_protocol
from repro.baselines.send_all import send_all_protocol

__all__ = [
    "centralized_reference",
    "one_round_protocol",
    "send_all_protocol",
]
