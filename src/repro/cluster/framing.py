"""Codec-framed pickle transport over stream sockets.

The cluster backend ships every task and payload over a real byte stream
(a unix-domain socket per host), so the framing layer is where wire-level
byte accounting becomes exact.  A frame is::

    [8-byte big-endian encoded-body length][1-byte codec id][encoded body]

and the *body* — before the frame codec runs — is a pickle protocol-5
envelope with out-of-band buffers::

    [4-byte n_buffers][8-byte pickle length][n x 8-byte buffer lengths]
    [pickle bytes][buffer bytes ...]

Numpy arrays (and anything else that emits :class:`pickle.PickleBuffer`)
travel as raw out-of-band buffers after the pickle stream; on receive the
decoder hands ``pickle.loads`` memoryview slices of the frame buffer, so an
uncompressed frame is decoded **zero-copy** — the arrays alias the receive
buffer instead of being re-materialised through the pickle machinery.  The
receive buffer is a ``bytearray`` (and compressed bodies are decompressed
into one), so decoded arrays stay *writable* exactly like in-band pickled
copies would be.

On top of the body sits a per-frame codec: ``none`` (identity), ``zlib``
(stdlib) and ``zstd`` (optional — install the ``zstd`` extra; the registry
silently falls back to zlib when the module is absent, so both ends of a
channel agree without negotiation).  Compression is an explicit
size-vs-decode-time tradeoff chosen per frame *kind* by a
:class:`WirePolicy`: latency-sensitive state pulls and control frames stay
uncompressed while shard/payload shipping is compressed.  A codec that
fails to shrink a body (or a body under :data:`MIN_COMPRESS_BYTES`) is
dropped for that frame — the wire never carries a frame larger than its
raw form, and the choice is deterministic so repeated runs exchange
byte-identical streams.

Both :meth:`FrameChannel.send` and :meth:`FrameChannel.recv` report the
bytes that actually crossed the socket *and* the bytes the frame would have
occupied uncompressed (header included) — the raw/encoded pair the
:class:`~repro.cluster.wire.WireLedger` records per frame.

Framing errors are surfaced as :class:`ConnectionError` — a short read
means the peer went away mid-frame, which the backend turns into a
host-death diagnostic.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple, Union

try:  # pragma: no cover - exercised only where the optional extra is installed
    import zstandard as _zstandard
except ImportError:  # pragma: no cover - the fallback path is the tested one here
    _zstandard = None

#: Whether the optional zstd codec is actually usable in this interpreter.
HAVE_ZSTD = _zstandard is not None

#: Frame header: unsigned 64-bit big-endian *encoded* body length plus the
#: one-byte wire id of the codec that encoded the body.
_HEADER = struct.Struct(">QB")

#: Wire bytes a frame occupies beyond its encoded body.
FRAME_OVERHEAD = _HEADER.size

#: Body envelope header: number of out-of-band buffers, pickle byte length.
_BODY_HEADER = struct.Struct(">IQ")

#: Per-buffer length slot in the body envelope.
_BUF_LEN = struct.Struct(">Q")

#: Pickle protocol used for every frame (protocol 5: out-of-band buffers).
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Bodies smaller than this skip the compression attempt entirely: the codec
#: overhead cannot win on control frames and tiny results, and skipping keeps
#: the encoded stream deterministic and cheap.
MIN_COMPRESS_BYTES = 256


def encode_payload(obj: Any) -> bytes:
    """Serialise one object as a standalone pickle (no out-of-band buffers).

    This is the *component* encoder: outbox payloads, resident-state entry
    sizes and content-addressed payload digests all price an object by these
    bytes, independent of whatever frame later carries it.
    """
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(data)


# ---------------------------------------------------------------------------
# Codec registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Codec:
    """One frame codec: a name, a one-byte wire id and the byte transforms."""

    name: str
    wire_id: int
    compress: Callable[[bytes], bytes]
    decompress: Callable[[bytes], bytes]


def _zstd_codec() -> Optional[Codec]:
    if _zstandard is None:
        return None
    compressor = _zstandard.ZstdCompressor()
    decompressor = _zstandard.ZstdDecompressor()

    def compress(data: bytes) -> bytes:
        return compressor.compress(data)

    def decompress(data: bytes) -> bytes:
        return decompressor.decompress(data)

    return Codec(name="zstd", wire_id=2, compress=compress, decompress=decompress)


NONE_CODEC = Codec(name="none", wire_id=0, compress=lambda d: d, decompress=lambda d: d)
ZLIB_CODEC = Codec(name="zlib", wire_id=1, compress=zlib.compress, decompress=zlib.decompress)
ZSTD_CODEC = _zstd_codec()

_CODECS_BY_NAME: Dict[str, Codec] = {"none": NONE_CODEC, "zlib": ZLIB_CODEC}
if ZSTD_CODEC is not None:  # pragma: no cover - requires the optional extra
    _CODECS_BY_NAME["zstd"] = ZSTD_CODEC

_CODECS_BY_ID: Dict[int, Codec] = {c.wire_id: c for c in _CODECS_BY_NAME.values()}


def available_codecs() -> Tuple[str, ...]:
    """Names the registry can actually resolve in this interpreter."""
    return tuple(sorted(_CODECS_BY_NAME))


def resolve_codec(name: Union[str, Codec, None]) -> Codec:
    """Resolve a codec name to a usable :class:`Codec`.

    ``None`` means ``"none"``; ``"auto"`` picks the best available
    compressor (zstd when the optional extra is installed, zlib otherwise);
    ``"zstd"`` falls back to zlib when the module is absent — both ends of a
    channel resolve independently from the same environment, so the fallback
    needs no negotiation.  Unknown names raise :class:`ValueError`.
    """
    if isinstance(name, Codec):
        return name
    if name is None:
        return NONE_CODEC
    label = str(name).strip().lower()
    if label == "auto":
        return ZSTD_CODEC if ZSTD_CODEC is not None else ZLIB_CODEC
    if label == "zstd" and ZSTD_CODEC is None:
        return ZLIB_CODEC
    codec = _CODECS_BY_NAME.get(label)
    if codec is None:
        raise ValueError(
            f"unknown wire codec {name!r}; available: {', '.join(available_codecs())} "
            "(plus 'auto')"
        )
    return codec


def codec_by_id(wire_id: int) -> Codec:
    """The codec a received frame header names; raises on undecodable ids."""
    codec = _CODECS_BY_ID.get(wire_id)
    if codec is None:
        if wire_id == 2:
            raise ConnectionError(
                "received a zstd-encoded frame but the zstandard module is not "
                "installed (install the 'zstd' extra)"
            )
        raise ConnectionError(f"received a frame with unknown codec id {wire_id}")
    return codec


# ---------------------------------------------------------------------------
# Body envelope (pickle-5 with out-of-band buffers)
# ---------------------------------------------------------------------------


def encode_body(obj: Any) -> bytes:
    """Serialise one object into the raw (pre-codec) frame body."""
    buffers = []
    pik = pickle.dumps(obj, protocol=PICKLE_PROTOCOL, buffer_callback=buffers.append)
    raws = [b.raw() for b in buffers]
    parts = [_BODY_HEADER.pack(len(raws), len(pik))]
    for raw in raws:
        parts.append(_BUF_LEN.pack(raw.nbytes))
    parts.append(pik)
    parts.extend(raws)
    return b"".join(parts)


def decode_body(body) -> Any:
    """Inverse of :func:`encode_body`.

    ``body`` may be any buffer; out-of-band buffers are handed to pickle as
    memoryview *slices* of it (zero-copy).  Pass a ``bytearray`` to make the
    decoded arrays writable — they alias the body for their whole lifetime.
    """
    view = memoryview(body)
    n_buffers, pik_len = _BODY_HEADER.unpack_from(view, 0)
    offset = _BODY_HEADER.size
    lengths = []
    for _ in range(n_buffers):
        (length,) = _BUF_LEN.unpack_from(view, offset)
        offset += _BUF_LEN.size
        lengths.append(length)
    pik = view[offset : offset + pik_len]
    offset += pik_len
    buffers = []
    for length in lengths:
        buffers.append(view[offset : offset + length])
        offset += length
    return pickle.loads(pik, buffers=buffers)


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EncodedFrame:
    """One frame ready for the socket, with its raw/encoded byte accounting.

    ``data`` is the codec-encoded body, ``codec`` the name the header will
    carry (``"none"`` whenever compression was skipped or did not shrink the
    body), ``raw_len`` the body's pre-codec length.
    """

    data: bytes
    codec: str
    raw_len: int

    @property
    def n_bytes(self) -> int:
        """Wire bytes the frame occupies, header included."""
        return FRAME_OVERHEAD + len(self.data)

    @property
    def raw_bytes(self) -> int:
        """Wire bytes the frame would occupy uncompressed, header included."""
        return FRAME_OVERHEAD + self.raw_len


def encode_frame(obj: Any, codec: Union[str, Codec, None] = None) -> EncodedFrame:
    """Serialise one object into an :class:`EncodedFrame` under ``codec``.

    Compression is attempted only when the body reaches
    :data:`MIN_COMPRESS_BYTES` and kept only when it shrinks the body, so an
    encoded frame is never larger than its raw form and the outcome is a
    pure function of the payload — repeat runs stay byte-identical.
    """
    resolved = resolve_codec(codec)
    body = encode_body(obj)
    if resolved.wire_id != NONE_CODEC.wire_id and len(body) >= MIN_COMPRESS_BYTES:
        compressed = resolved.compress(body)
        if len(compressed) < len(body):
            return EncodedFrame(data=compressed, codec=resolved.name, raw_len=len(body))
    return EncodedFrame(data=body, codec=NONE_CODEC.name, raw_len=len(body))


# ---------------------------------------------------------------------------
# Per-frame-kind codec policy
# ---------------------------------------------------------------------------

#: Frame kinds whose payloads are worth compressing: site dispatch/result
#: (shard + metric shipping) and structure-free task traffic.  State pulls
#: are latency-sensitive faults and control frames are tiny — both stay
#: uncompressed.
COMPRESSIBLE_KINDS = ("site", "task", "replay", "replay_task")

_DEFAULT_POLICY: Dict[str, str] = {
    "site": "auto",
    "task": "auto",
    "state_pull": "none",
    "control": "none",
    # Recovery traffic mirrors the kinds it replays: re-executed site
    # dispatches and re-dispatched tasks compress like the originals,
    # re-issued state pulls stay latency-sensitive and uncompressed.
    "replay": "auto",
    "replay_task": "auto",
    "replay_pull": "none",
    # Heartbeats are a tiny tuple (plus, with telemetry on, one small
    # resource-sample dict) sent on a liveness deadline — never worth a
    # codec pass.  Listed for documentation; ``codec_for`` would default
    # unknown kinds to ``none`` anyway.
    "hb": "none",
}

#: Environment variable overriding the codec of every compressible kind
#: (``none`` / ``zlib`` / ``zstd`` / ``auto``).  The coordinator's
#: environment is inherited by its runners, so one setting governs both
#: directions of every channel.
WIRE_CODEC_ENV = "REPRO_WIRE_CODEC"


@dataclass(frozen=True)
class WirePolicy:
    """Maps base frame kinds (``site``/``task``/``state_pull``/``control``)
    to the codec their frames are encoded with, in both directions."""

    codecs: Mapping[str, Codec]

    @classmethod
    def from_env(cls, env: Optional[Mapping[str, str]] = None) -> "WirePolicy":
        """The default policy, with :data:`WIRE_CODEC_ENV` applied on top."""
        source = os.environ if env is None else env
        mapping = dict(_DEFAULT_POLICY)
        override = source.get(WIRE_CODEC_ENV)
        if override:
            for kind in COMPRESSIBLE_KINDS:
                mapping[kind] = override
        return cls(codecs={kind: resolve_codec(name) for kind, name in mapping.items()})

    def codec_for(self, kind: str) -> Codec:
        """Codec for one base frame kind; unknown kinds are uncompressed."""
        return self.codecs.get(kind, NONE_CODEC)


# ---------------------------------------------------------------------------
# Socket I/O
# ---------------------------------------------------------------------------

#: Upper bound on a single ``recv_into`` request.  Large compressed frames
#: arrive in many short reads; capping the request keeps each one inside the
#: kernel's buffer sizing while the loop below tolerates arbitrarily short
#: returns.
_RECV_CHUNK = 1 << 20


def recv_exact(sock: socket.socket, n_bytes: int) -> bytearray:
    """Read exactly ``n_bytes`` from ``sock`` or raise :class:`ConnectionError`.

    Reads straight into one pre-sized ``bytearray`` via ``recv_into`` — no
    per-chunk allocations or joins, and short reads (the normal case for
    multi-MB frames crossing a socket buffer) simply continue the loop.
    The returned buffer is writable, so zero-copy decoded arrays are too.
    """
    buf = bytearray(n_bytes)
    view = memoryview(buf)
    received = 0
    while received < n_bytes:
        n = sock.recv_into(view[received:], min(n_bytes - received, _RECV_CHUNK))
        if n == 0:
            raise ConnectionError(
                f"peer closed the connection mid-frame ({received}"
                f"/{n_bytes} bytes received)"
            )
        received += n
    return buf


class FrameChannel:
    """A framed, byte-counted, codec-aware pickle channel over one socket.

    Counters accumulate over the channel's lifetime:

    ``bytes_sent`` / ``bytes_received``
        Total wire bytes in each direction, frame headers included (the
        *encoded* sizes — what actually crossed the socket).
    ``raw_bytes_sent`` / ``raw_bytes_received``
        What the same frames would have occupied uncompressed.
    ``frames_sent`` / ``frames_received``
        Number of frames in each direction.

    Two I/O styles share those counters.  The blocking pair
    (:meth:`send` / :meth:`recv`) is what runners and the startup handshake
    use.  The non-blocking pair is a read/write state machine for a
    selector-driven coordinator: :meth:`feed_bytes` + :meth:`take_frames`
    reassemble frames from whatever byte slices the socket produced
    (partial headers and split bodies included), and :meth:`queue_frame` +
    :meth:`flush_out` buffer outgoing frames and drain them as far as the
    socket accepts, with :attr:`pending_out` exposing the backpressure.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0
        self.raw_bytes_sent = 0
        self.raw_bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0
        # Non-blocking read state: raw bytes as they arrived, reassembled
        # into frames by take_frames().
        self._in_buf = bytearray()
        # Non-blocking write state: a FIFO of encoded byte chunks plus the
        # offset already sent from the head chunk.  queue_frame() runs on
        # dispatching threads while flush_out() runs on the event loop, so
        # the queue has its own lock.
        self._out: Deque[memoryview] = deque()
        self._out_bytes = 0
        self._out_lock = threading.Lock()

    def send(self, obj: Any, codec: Union[str, Codec, None] = None) -> EncodedFrame:
        """Encode and send one frame; returns the :class:`EncodedFrame`."""
        frame = encode_frame(obj, codec)
        self.send_frame(frame)
        return frame

    def send_frame(self, frame: EncodedFrame) -> int:
        """Send one pre-encoded frame; returns the wire bytes it occupied.

        Lets a caller separate serialization (and its byte accounting) from
        the potentially blocking socket write.
        """
        codec = resolve_codec(frame.codec)
        self._sock.sendall(_HEADER.pack(len(frame.data), codec.wire_id) + frame.data)
        self.bytes_sent += frame.n_bytes
        self.raw_bytes_sent += frame.raw_bytes
        self.frames_sent += 1
        return frame.n_bytes

    def recv(self) -> Tuple[Any, int, int, str]:
        """Receive one frame; returns ``(object, wire_bytes, raw_bytes, codec)``.

        ``wire_bytes`` is what physically crossed the socket (header
        included); ``raw_bytes`` what the frame would have occupied
        uncompressed; ``codec`` the name of the codec that actually encoded
        the body.  For an uncompressed frame the byte pair is equal and the
        object is decoded zero-copy from the receive buffer.

        Raises :class:`ConnectionError` when the peer disconnects — at a
        frame boundary (clean EOF) or mid-frame (short read).
        """
        try:
            header = recv_exact(self._sock, _HEADER.size)
        except ConnectionError:
            raise
        except OSError as exc:  # pragma: no cover - platform-dependent errno
            raise ConnectionError(f"socket receive failed: {exc}") from exc
        length, codec_id = _HEADER.unpack(bytes(header))
        data = recv_exact(self._sock, length)
        codec = codec_by_id(codec_id)
        if codec.wire_id == NONE_CODEC.wire_id:
            body = data
        else:
            # Decompress into a writable scratch buffer so decoded arrays
            # are mutable either way (bytes from a decompressor are not).
            body = bytearray(codec.decompress(bytes(data)))
        n_bytes = FRAME_OVERHEAD + length
        raw_bytes = FRAME_OVERHEAD + len(body)
        self.bytes_received += n_bytes
        self.raw_bytes_received += raw_bytes
        self.frames_received += 1
        return decode_body(body), n_bytes, raw_bytes, codec.name

    # ------------------------------------------------------------------
    # Non-blocking state machines (selector-driven coordinator side)
    # ------------------------------------------------------------------

    def fileno(self) -> int:
        """The underlying socket's file descriptor (for selector registration)."""
        return self._sock.fileno()

    def set_nonblocking(self) -> None:
        """Switch the socket to non-blocking mode (loop-managed channels)."""
        self._sock.setblocking(False)

    def set_blocking(self, timeout: Optional[float] = None) -> None:
        """Switch back to blocking mode (shutdown drains outside the loop)."""
        self._sock.settimeout(timeout)

    def read_ready(self) -> int:
        """Read whatever the socket has into the reassembly buffer.

        Returns the number of bytes read, or ``-1`` when the socket merely
        has no data right now (``EWOULDBLOCK``).  EOF and socket errors
        raise :class:`ConnectionError` — on a frame-based protocol both mean
        the peer is gone.
        """
        try:
            data = self._sock.recv(_RECV_CHUNK)
        except (BlockingIOError, InterruptedError):
            return -1
        except OSError as exc:
            raise ConnectionError(f"socket receive failed: {exc}") from exc
        if not data:
            raise ConnectionError("peer closed the connection")
        self._in_buf += data
        return len(data)

    def feed_bytes(self, data) -> None:
        """Append raw received bytes to the reassembly buffer.

        Accepts any byte slice — a lone half of a frame header is fine; the
        frames only materialise once :meth:`take_frames` finds them whole.
        """
        self._in_buf += data

    def take_frames(self) -> List[Tuple[Any, int, int, str]]:
        """Decode every *complete* frame currently in the reassembly buffer.

        Returns ``(object, wire_bytes, raw_bytes, codec)`` tuples exactly
        like :meth:`recv` would, in arrival order; incomplete trailing bytes
        (a partial header, a body still crossing the socket) stay buffered
        for the next feed.  Counters advance only for frames actually
        decoded.
        """
        frames: List[Tuple[Any, int, int, str]] = []
        buf = self._in_buf
        offset = 0
        while len(buf) - offset >= _HEADER.size:
            length, codec_id = _HEADER.unpack_from(buf, offset)
            total = _HEADER.size + length
            if len(buf) - offset < total:
                break
            # A writable copy of the body: zero-copy decoded arrays alias it
            # for their lifetime, so it must not be a view into _in_buf
            # (which the next feed would grow or the del below reclaim).
            data = bytearray(buf[offset + _HEADER.size : offset + total])
            offset += total
            codec = codec_by_id(codec_id)
            if codec.wire_id == NONE_CODEC.wire_id:
                body = data
            else:
                body = bytearray(codec.decompress(bytes(data)))
            n_bytes = FRAME_OVERHEAD + length
            raw_bytes = FRAME_OVERHEAD + len(body)
            self.bytes_received += n_bytes
            self.raw_bytes_received += raw_bytes
            self.frames_received += 1
            frames.append((decode_body(body), n_bytes, raw_bytes, codec.name))
        if offset:
            del buf[:offset]
        return frames

    def queue_frame(self, frame: EncodedFrame) -> int:
        """Buffer one pre-encoded frame for a later :meth:`flush_out`.

        Byte accounting happens here — at queue time, matching the blocking
        :meth:`send_frame` contract that a frame is on the channel's books
        the moment the dispatch path hands it over.  Returns the wire bytes
        the frame occupies.
        """
        codec = resolve_codec(frame.codec)
        payload = _HEADER.pack(len(frame.data), codec.wire_id) + frame.data
        with self._out_lock:
            self._out.append(memoryview(payload))
            self._out_bytes += len(payload)
            self.bytes_sent += frame.n_bytes
            self.raw_bytes_sent += frame.raw_bytes
            self.frames_sent += 1
        return frame.n_bytes

    @property
    def pending_out(self) -> int:
        """Bytes queued but not yet accepted by the socket (backpressure)."""
        return self._out_bytes

    def flush_out(self) -> bool:
        """Write queued bytes until the socket stops accepting them.

        Returns ``True`` when the send buffer drained completely, ``False``
        when bytes remain (the caller keeps write interest registered).
        Raises :class:`ConnectionError` when the peer is gone.
        """
        with self._out_lock:
            while self._out:
                chunk = self._out[0]
                try:
                    n = self._sock.send(chunk)
                except (BlockingIOError, InterruptedError):
                    return False
                except OSError as exc:
                    raise ConnectionError(f"socket send failed: {exc}") from exc
                self._out_bytes -= n
                if n < len(chunk):
                    self._out[0] = chunk[n:]
                    return False
                self._out.popleft()
        return True

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


__all__ = [
    "COMPRESSIBLE_KINDS",
    "Codec",
    "EncodedFrame",
    "FRAME_OVERHEAD",
    "FrameChannel",
    "HAVE_ZSTD",
    "MIN_COMPRESS_BYTES",
    "NONE_CODEC",
    "PICKLE_PROTOCOL",
    "WIRE_CODEC_ENV",
    "WirePolicy",
    "ZLIB_CODEC",
    "ZSTD_CODEC",
    "available_codecs",
    "codec_by_id",
    "decode_body",
    "decode_payload",
    "encode_body",
    "encode_frame",
    "encode_payload",
    "recv_exact",
    "resolve_codec",
]
