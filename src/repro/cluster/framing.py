"""Length-prefixed pickle framing over stream sockets.

The cluster backend ships every task and payload over a real byte stream
(a unix-domain socket per host), so the framing layer is where wire-level
byte accounting becomes exact: a frame is an 8-byte big-endian length
prefix followed by a pickled object, and both :meth:`FrameChannel.send`
and :meth:`FrameChannel.recv` report the number of bytes that actually
crossed the socket (prefix included).

Framing errors are surfaced as :class:`ConnectionError` — a short read
means the peer went away mid-frame, which the backend turns into a
host-death diagnostic.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

#: Frame header: unsigned 64-bit big-endian payload length.
_HEADER = struct.Struct(">Q")

#: Wire bytes a frame occupies beyond its pickled body.
FRAME_OVERHEAD = _HEADER.size

#: Pickle protocol used for every frame (protocol 5: numpy arrays ride
#: through as raw out-of-band-capable buffers).
PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def encode_payload(obj: Any) -> bytes:
    """Serialise one object exactly as the wire would carry it."""
    return pickle.dumps(obj, protocol=PICKLE_PROTOCOL)


def decode_payload(data: bytes) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(data)


def recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    """Read exactly ``n_bytes`` from ``sock`` or raise :class:`ConnectionError`."""
    chunks = []
    remaining = n_bytes
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"peer closed the connection mid-frame ({n_bytes - remaining}"
                f"/{n_bytes} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class FrameChannel:
    """A framed, byte-counted pickle channel over one connected socket.

    Counters accumulate over the channel's lifetime:

    ``bytes_sent`` / ``bytes_received``
        Total wire bytes in each direction, length prefixes included.
    ``frames_sent`` / ``frames_received``
        Number of frames in each direction.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self.bytes_sent = 0
        self.bytes_received = 0
        self.frames_sent = 0
        self.frames_received = 0

    def send(self, obj: Any) -> int:
        """Send one frame; returns the wire bytes it occupied."""
        return self.send_encoded(encode_payload(obj))

    def send_encoded(self, data: bytes) -> int:
        """Send one pre-encoded frame body; returns the wire bytes it occupied.

        Lets a caller separate serialization (and its byte accounting) from
        the potentially blocking socket write.
        """
        self._sock.sendall(_HEADER.pack(len(data)) + data)
        n_bytes = _HEADER.size + len(data)
        self.bytes_sent += n_bytes
        self.frames_sent += 1
        return n_bytes

    def recv(self) -> Tuple[Any, int]:
        """Receive one frame; returns ``(object, wire_bytes)``.

        Raises :class:`ConnectionError` when the peer disconnects — at a
        frame boundary (clean EOF) or mid-frame (short read).
        """
        try:
            header = recv_exact(self._sock, _HEADER.size)
        except ConnectionError:
            raise
        except OSError as exc:  # pragma: no cover - platform-dependent errno
            raise ConnectionError(f"socket receive failed: {exc}") from exc
        (length,) = _HEADER.unpack(header)
        data = recv_exact(self._sock, length)
        n_bytes = _HEADER.size + length
        self.bytes_received += n_bytes
        self.frames_received += 1
        return decode_payload(data), n_bytes

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


__all__ = [
    "FRAME_OVERHEAD",
    "FrameChannel",
    "PICKLE_PROTOCOL",
    "decode_payload",
    "encode_payload",
    "recv_exact",
]
