"""Distributed-memory cluster backend with wire-level byte accounting.

The star-network simulator charges every message a semantic *word* count but
historically delivered payloads by reference inside one process.  This
subsystem closes the loop on the paper's communication claims: a
:class:`~repro.cluster.backend.ClusterBackend` spawns one long-lived runner
process per simulated host, ships site tasks and payloads over real
length-prefixed socket connections (:mod:`repro.cluster.framing`), keeps
each site's shard, local metric *and mutable round state* resident on its
runner across rounds (state returns as a digest and is faulted lazily — see
:mod:`repro.runtime.state`), ships repeated task payload components as
content-addressed digests (:mod:`repro.cluster.payloads`), compresses the
bulky frame kinds under a per-kind codec policy
(:class:`~repro.cluster.framing.WirePolicy` — pickle protocol 5 with
out-of-band numpy buffers, zlib or zstd frame compression), and
records the exact bytes every frame occupied — raw *and* encoded — in a
:class:`~repro.cluster.wire.WireLedger` that the semantic
:class:`~repro.distributed.messages.CommunicationLedger` folds into its
``summary()`` — words *and* bytes, side by side.

Select it like any other backend::

    from repro import partial_kmedian

    result = partial_kmedian(points, k=3, t=30, backend="cluster:3")
    result.ledger.summary()["total_bytes"]   # > 0: real wire traffic
    result.ledger.summary()["total_words"]   # identical to backend="serial"

Results are bit-identical to ``backend="serial"`` for a fixed seed — the
wire is an execution detail; the word ledger never changes.

With a :class:`~repro.cluster.recovery.RetryPolicy` installed the backend is
also fault tolerant: a runner death mid-round (socket error or heartbeat
timeout) is recovered by re-pinning the dead host's sites deterministically
to survivors and replaying their dispatch logs — still bit-identical, with
the replay bytes accounted under ``replay_*`` frame kinds and a
:class:`~repro.cluster.wire.RecoveryEvent` in the ledger.  A deterministic
:class:`~repro.cluster.recovery.FaultPlan` (or the ``REPRO_FAULT_PLAN``
environment variable) injects failures for tests and drills.
"""

from repro.cluster.backend import ClusterBackend
from repro.cluster.framing import (
    FrameChannel,
    WirePolicy,
    available_codecs,
    decode_payload,
    encode_payload,
    resolve_codec,
)
from repro.cluster.payloads import PayloadCache
from repro.cluster.recovery import DeadHostError, FaultAction, FaultPlan, RetryPolicy
from repro.cluster.service import ClusterJob, ClusterService, ServiceBackend, shared_service
from repro.cluster.wire import RecoveryEvent, WireLedger, WireRecord

__all__ = [
    "ClusterBackend",
    "ClusterJob",
    "ClusterService",
    "DeadHostError",
    "FaultAction",
    "FaultPlan",
    "FrameChannel",
    "PayloadCache",
    "RecoveryEvent",
    "RetryPolicy",
    "ServiceBackend",
    "WireLedger",
    "WirePolicy",
    "WireRecord",
    "available_codecs",
    "decode_payload",
    "encode_payload",
    "resolve_codec",
    "shared_service",
]
