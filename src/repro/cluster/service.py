"""Clustering as a service: a multi-job admission queue over one warm pool.

A :class:`ClusterService` owns a single :class:`~repro.cluster.backend.
ClusterBackend` warm pool and admits multiple concurrent clustering runs
against it.  Each admitted job gets a :class:`ServiceBackend` — a thin
:class:`~repro.runtime.backends.ExecutionBackend` view of the shared pool
that stamps every dispatch with the job's private *namespace*, so the
pool's content-addressed payload caches, resident site state, heartbeat
accounting and telemetry routing stay fully isolated between jobs:

* **Payload caches** are per-namespace on both ends of the wire (see the
  ``ns`` frame slot in :mod:`repro.cluster.runner`): one job's cache hits
  never depend on what another job shipped, so each job's wire ledger is
  bit-identical to the ledger of the same run on a standalone pool.
* **Resident site state** is keyed by ``(namespace, site slot)``; the
  existing warm-pool slot-eviction machinery gives each lane the same
  reuse semantics a standalone warm pool has.
* **Wire ledgers and tracers** are per-run objects the job's own driver
  passes down — the service never mixes them; heartbeat accounting
  captured for one job is detached at that job's end only
  (:meth:`ClusterBackend.detach_run_accounting` with ``job=``).
* **Telemetry** installed on a job's backend lands in a per-job session
  (:meth:`ClusterBackend.set_job_telemetry`): the job's forwarded runner
  logs reach its session only, while host-level resource samples — shared
  infrastructure truth — fan out to every installed session.

Admission control is keyed on ``memory_budget`` (same grammar as the
blocked-evaluation budgets: bytes, or strings like ``"64MB"`` — see
:func:`repro.metrics.blocked.resolve_memory_budget`).  The service has an
optional ``capacity``; jobs are admitted strictly in submission order
(FIFO — no job starves, no small job jumps a big one) whenever their
budget fits into what is left, and a job that alone exceeds capacity is
admitted only when the pool is otherwise idle, so oversized work degrades
to serial instead of deadlocking.

Two front doors:

:meth:`ClusterService.submit`
    The job-queue API: ``service.submit(fn, *args, memory_budget=...)``
    returns a :class:`ClusterJob` immediately; ``fn`` runs on a worker
    thread once admitted, receiving the job's :class:`ServiceBackend` as
    its first argument, and ``job.result()`` joins it.

:meth:`ClusterService.checkout`
    The blocking API behind ``REPRO_CLUSTER_SERVICE=1``: waits for
    admission and returns the :class:`ServiceBackend` directly; closing
    the backend releases the job's lane.  This is how existing
    ``backend="cluster:N"`` call sites run through a shared service pool
    without code changes.

Lanes — the job namespaces — are recycled smallest-first, so a steady
stream of jobs reuses the same few namespaces (and the pool's site slots
behave exactly like a warm pool being reused run after run).  A fail-fast
pool whose hosts died is retired when its last job releases: the next
checkout gets a fresh pool instead of the wreck.
"""

from __future__ import annotations

import atexit
import heapq
import itertools
import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.backend import ClusterBackend
from repro.cluster.recovery import RetryPolicy
from repro.metrics.blocked import MemoryBudgetLike, resolve_memory_budget
from repro.runtime.backends import ExecutionBackend


class ServiceBackend(ExecutionBackend):
    """One admitted job's view of the shared warm pool.

    Implements the same dispatch surface as
    :class:`~repro.cluster.backend.ClusterBackend` — the round scheduler
    duck-types it identically — but stamps every frame with the job's
    namespace and scopes the run-lifecycle hooks (telemetry, heartbeat
    accounting detach, close) to this job only.  :meth:`close` releases
    the job's admission slot; it never closes the shared pool.
    """

    name = "service"

    def __init__(self, service: "ClusterService", pool: ClusterBackend,
                 job: str, label: str, memory_budget: Optional[int]):
        self._service = service
        self._pool = pool
        #: The job namespace every dispatch of this backend is stamped with.
        self.job = job
        self.label = label
        #: Bytes reserved against the service capacity (None reserves zero).
        self.memory_budget = memory_budget
        self._released = False

    # -- dispatch: the ClusterBackend surface, namespaced -----------------

    def submit_tasks(self, fn, payloads, *, wire=None, round_index=0,
                     tracer=None) -> List[Future]:
        return self._pool.submit_tasks(
            fn, payloads, wire=wire, round_index=round_index, tracer=tracer,
            job=self.job,
        )

    def submit_site_pairs(self, pairs, *, wire=None, round_index=0,
                          tracer=None) -> List[Future]:
        return self._pool.submit_site_pairs(
            pairs, wire=wire, round_index=round_index, tracer=tracer,
            job=self.job,
        )

    def submit_ordered(self, fn: Callable[[Any], Any],
                       items: Sequence[Any]) -> List[Future]:
        return self.submit_tasks(fn, list(items))

    def map_ordered(self, fn: Callable[[Any], Any],
                    items: Sequence[Any]) -> List[Any]:
        return [future.result() for future in self.submit_ordered(fn, items)]

    # -- run-lifecycle hooks, scoped to this job --------------------------

    def set_retry_policy(self, retry: Optional[RetryPolicy]) -> None:
        """Retry policies govern the shared hosts, so they land pool-wide."""
        self._pool.set_retry_policy(retry)

    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        self._pool.set_job_telemetry(self.job, telemetry)

    def detach_run_accounting(self) -> None:
        self._pool.detach_run_accounting(job=self.job)

    def runner_timers(self):
        return self._pool.runner_timers()

    @property
    def n_hosts(self) -> int:
        return self._pool.n_hosts

    @property
    def socket_dir(self) -> Optional[str]:
        return self._pool.socket_dir

    def dead_hosts(self) -> Dict[int, str]:
        return self._pool.dead_hosts()

    def close(self) -> None:
        """Release this job's admission slot (the shared pool stays warm)."""
        if self._released:
            return
        self._released = True
        self._service.release(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ServiceBackend(job={self.job!r}, label={self.label!r}, "
                f"n_hosts={self._pool.n_hosts})")


class ClusterJob:
    """Handle for one queued/running service job.

    ``result()`` joins the job (re-raising whatever its function raised);
    ``done()`` polls.  The namespace (:attr:`job`) is assigned at admission
    time, so it is ``None`` while the job is still queued.
    """

    def __init__(self, label: str, memory_budget: Optional[int]):
        self.label = label
        self.memory_budget = memory_budget
        #: The lane namespace, set once the job is admitted.
        self.job: Optional[str] = None
        self._future: Future = Future()

    def result(self, timeout: Optional[float] = None) -> Any:
        return self._future.result(timeout)

    def done(self) -> bool:
        return self._future.done()

    def exception(self, timeout: Optional[float] = None):
        return self._future.exception(timeout)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done() else ("running" if self.job else "queued")
        return f"ClusterJob(label={self.label!r}, {state})"


class ClusterService:
    """A FIFO job queue admitting concurrent runs onto one warm pool."""

    def __init__(
        self,
        n_hosts: Optional[int] = None,
        *,
        capacity: MemoryBudgetLike = None,
        retry: Optional[RetryPolicy] = None,
        start_timeout: float = 60.0,
    ):
        self.n_hosts = n_hosts
        #: Total admission capacity in bytes (None = unlimited).
        self.capacity = resolve_memory_budget(capacity)
        self._retry = retry
        self._start_timeout = start_timeout
        self._lock = threading.Lock()
        self._admit = threading.Condition(self._lock)
        self._pool: Optional[ClusterBackend] = None
        #: Bytes currently reserved by admitted jobs.
        self._reserved = 0
        #: Namespace -> the admitted backend holding that lane.
        self._active: Dict[str, ServiceBackend] = {}
        #: Freed lane numbers, recycled smallest-first.
        self._free_lanes: List[int] = []
        self._next_lane = 1
        #: FIFO admission tickets: jobs are admitted strictly in the order
        #: their tickets were drawn, regardless of budget size.
        self._tickets = itertools.count()
        self._queue: List[int] = []
        self._closed = False
        self._job_threads: List[threading.Thread] = []

    # -- admission ---------------------------------------------------------

    def _fits_locked(self, budget: Optional[int]) -> bool:
        if not self._active:
            # An otherwise idle pool always admits: a job bigger than the
            # whole capacity degrades to running alone, never deadlocks.
            return True
        if self.capacity is None:
            return True
        return self._reserved + (budget or 0) <= self.capacity

    def _allocate_lane_locked(self) -> str:
        if self._free_lanes:
            lane = heapq.heappop(self._free_lanes)
        else:
            lane = self._next_lane
            self._next_lane += 1
        return f"job-{lane}"

    def _ensure_pool_locked(self) -> ClusterBackend:
        pool = self._pool
        if pool is not None and not self._active and pool.dead_hosts():
            # A fail-fast pool whose hosts died is a wreck: retire it while
            # nothing is running and start the next job on a fresh pool.
            self._pool = None
            pool.close()
            pool = None
        if pool is None:
            pool = self._pool = ClusterBackend(
                n_hosts=self.n_hosts,
                retry=self._retry,
                start_timeout=self._start_timeout,
            )
        return pool

    def checkout(
        self,
        memory_budget: MemoryBudgetLike = None,
        label: str = "",
    ) -> ServiceBackend:
        """Block until admitted; return this job's backend view of the pool.

        Admission is FIFO over every waiting ``checkout``/``submit``: the
        job at the head of the queue is admitted as soon as its
        ``memory_budget`` fits the remaining capacity (always, when the
        pool is idle).  Close the returned backend to release the lane.
        """
        budget = resolve_memory_budget(memory_budget)
        with self._admit:
            if self._closed:
                raise RuntimeError("the cluster service is closed")
            ticket = next(self._tickets)
            self._queue.append(ticket)
            while not (self._queue[0] == ticket and self._fits_locked(budget)):
                self._admit.wait()
                if self._closed:
                    self._queue.remove(ticket)
                    self._admit.notify_all()
                    raise RuntimeError("the cluster service is closed")
            self._queue.pop(0)
            self._reserved += budget or 0
            lane = self._allocate_lane_locked()
            pool = self._ensure_pool_locked()
            backend = ServiceBackend(self, pool, lane, label, budget)
            self._active[lane] = backend
            # The head job changed: the next waiter may fit alongside us.
            self._admit.notify_all()
            return backend

    def release(self, backend: ServiceBackend) -> None:
        """Return a job's lane and budget reservation (idempotent via close).

        Detaches the job's heartbeat accounting and telemetry session, and
        retires a fail-fast pool whose hosts died once its last job is
        gone — the next admission starts a fresh pool.
        """
        pool = backend._pool
        pool.detach_run_accounting(job=backend.job)
        pool.set_job_telemetry(backend.job, None)
        with self._admit:
            if self._active.pop(backend.job, None) is not None:
                self._reserved -= backend.memory_budget or 0
                heapq.heappush(
                    self._free_lanes, int(backend.job.rsplit("-", 1)[1])
                )
            broken = (self._pool is pool and not self._active
                      and pool.dead_hosts())
            if broken:
                self._pool = None
            self._admit.notify_all()
        if broken:
            pool.close()

    # -- the job queue -----------------------------------------------------

    def submit(
        self,
        fn: Callable[..., Any],
        *args: Any,
        memory_budget: MemoryBudgetLike = None,
        label: str = "",
        **kwargs: Any,
    ) -> ClusterJob:
        """Queue one job; ``fn(backend, *args, **kwargs)`` runs once admitted.

        Returns immediately with a :class:`ClusterJob`.  The function
        receives the job's :class:`ServiceBackend` as its first argument
        and its return value becomes ``job.result()``; an exception is
        re-raised from ``result()``.  Jobs are admitted in submission
        order under the service's memory-budget capacity.
        """
        job = ClusterJob(label or getattr(fn, "__name__", "job"),
                         resolve_memory_budget(memory_budget))

        def run() -> None:
            try:
                backend = self.checkout(job.memory_budget, label=job.label)
            except BaseException as exc:  # noqa: BLE001 - relayed to the handle
                job._future.set_exception(exc)
                return
            job.job = backend.job
            try:
                job._future.set_result(fn(backend, *args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - relayed to the handle
                job._future.set_exception(exc)
            finally:
                backend.close()

        thread = threading.Thread(
            target=run, name=f"cluster-service-{job.label}", daemon=True
        )
        with self._lock:
            self._job_threads = [t for t in self._job_threads if t.is_alive()]
            self._job_threads.append(thread)
        thread.start()
        return job

    # -- lifecycle ---------------------------------------------------------

    @property
    def active_jobs(self) -> int:
        with self._lock:
            return len(self._active)

    @property
    def queued_jobs(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self) -> None:
        """Refuse new admissions, join running jobs, shut the pool down."""
        with self._admit:
            self._closed = True
            self._admit.notify_all()
            threads = list(self._job_threads)
        for thread in threads:
            thread.join(timeout=60.0)
        with self._admit:
            pool, self._pool = self._pool, None
            self._active.clear()
            self._reserved = 0
        if pool is not None:
            pool.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- the shared registry behind REPRO_CLUSTER_SERVICE=1 --------------------

_shared_lock = threading.Lock()
_shared: Dict[Tuple[Optional[int]], ClusterService] = {}


def shared_service(n_hosts: Optional[int] = None) -> ClusterService:
    """The process-wide service for ``n_hosts`` (created on first use).

    Backs ``REPRO_CLUSTER_SERVICE=1``: every ``backend="cluster:N"`` spec
    resolved while the flag is set checks a job out of this shared pool
    instead of spawning a private one.  Closed automatically at process
    exit.
    """
    key = (n_hosts,)
    with _shared_lock:
        service = _shared.get(key)
        if service is None or service._closed:
            service = _shared[key] = ClusterService(n_hosts=n_hosts)
        return service


def _close_shared() -> None:  # pragma: no cover - exercised at interpreter exit
    with _shared_lock:
        services = list(_shared.values())
        _shared.clear()
    for service in services:
        try:
            service.close()
        except Exception:
            pass


atexit.register(_close_shared)

__all__ = ["ClusterJob", "ClusterService", "ServiceBackend", "shared_service"]
