"""Wire-level byte accounting for the cluster backend.

The semantic :class:`~repro.distributed.messages.CommunicationLedger` charges
every message a *word* count computed by the protocol from what it
semantically transmits — the paper's accounting, identical on every backend.
The :class:`WireLedger` is its physical twin: it records the bytes each
dispatch and result frame actually occupied on a runner socket, so a run on
the cluster backend can report words *and* bytes side by side (the
bytes-per-word ratio is what makes transmission claims comparable to
byte-level schemes in the literature).

Since the framing layer grew per-frame codecs, every record carries a
raw/encoded *pair*: ``n_bytes`` is what physically crossed the socket
(compressed frames included) and ``raw_bytes`` what the same frame would
have occupied uncompressed.  ``total_bytes()`` and every ``bytes_by_*``
aggregation stay the physical truth; the ``raw_*`` twins quantify what the
codec layer saved, and :meth:`WireLedger.compression_by_kind` renders the
benchmark's compression column.

This module is dependency-free on purpose: the communication ledger attaches
a ``WireLedger`` lazily without importing the rest of the cluster machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Frame kinds a cluster run can record, per direction: every dispatch kind
#: pairs with its ``*_result`` response.  ``state_pull`` frames exist only
#: when coordinator code faults runner-resident state entries (lazy site
#: state proxies); a protocol whose rounds never read heavy state records
#: none.  ``replay_*`` kinds exist only on runs that recovered from a runner
#: death: ``replay`` frames re-execute a dead host's site dispatch log on a
#: survivor, ``replay_task`` re-dispatches its in-flight structure-free
#: tasks and ``replay_pull`` re-issues its in-flight state faults — the
#: byte cost of recovery, accounted as honestly as the rest of the wire.
#: ``hb`` frames are runner liveness heartbeats (``recv`` only — runners
#: send them unsolicited), which also carry one resource sample each when
#: the telemetry plane asks for it; they cross the same sockets as
#: everything else, so they are accounted like everything else.
FRAME_KINDS = (
    "site_dispatch",
    "site_result",
    "task_dispatch",
    "task_result",
    "state_pull_dispatch",
    "state_pull_result",
    "replay_dispatch",
    "replay_result",
    "replay_task_dispatch",
    "replay_task_result",
    "replay_pull_dispatch",
    "replay_pull_result",
    "hb",
)


@dataclass(frozen=True)
class WireRecord:
    """One frame that crossed a coordinator-to-runner socket.

    Attributes
    ----------
    round_index:
        Protocol round the frame belongs to (0 for out-of-round traffic such
        as handshakes).
    host:
        Runner host id the frame was exchanged with.
    direction:
        ``"send"`` (coordinator -> runner) or ``"recv"`` (runner ->
        coordinator).
    kind:
        Frame label — one of :data:`FRAME_KINDS`.  ``site_*`` frames carry a
        protocol round's site tasks, ``task_*`` frames structure-free tasks,
        and ``state_pull_*`` frames the resident-state faults of a lazy
        :class:`~repro.runtime.state.RemoteStateProxy` (an entry of a site's
        runner-resident mutable state crossing back on explicit access).
    n_bytes:
        Wire bytes the frame physically occupied, header included — the
        codec-*encoded* size.
    raw_bytes:
        Bytes the same frame would have occupied uncompressed (equal to
        ``n_bytes`` for uncompressed frames; defaults to ``n_bytes``).
    codec:
        Name of the codec that encoded the frame body (``"none"`` when
        compression was off, skipped, or did not shrink the body).
    """

    round_index: int
    host: int
    direction: str
    kind: str
    n_bytes: int
    raw_bytes: Optional[int] = None
    codec: str = "none"

    def __post_init__(self) -> None:
        if self.n_bytes < 0:
            raise ValueError(f"frame byte count must be non-negative, got {self.n_bytes}")
        if self.raw_bytes is None:
            object.__setattr__(self, "raw_bytes", self.n_bytes)
        elif self.raw_bytes < self.n_bytes:
            raise ValueError(
                f"raw byte count ({self.raw_bytes}) cannot be smaller than the "
                f"encoded frame ({self.n_bytes}): codecs never grow a frame"
            )
        if self.direction not in ("send", "recv"):
            raise ValueError(f"direction must be 'send' or 'recv', got {self.direction!r}")


@dataclass(frozen=True)
class RecoveryEvent:
    """One recovered runner death, as the wire ledger remembers it.

    ``repin`` is the deterministic re-pin map recovery chose —
    ``{site_id: new_host_id}`` for every site whose resident state moved off
    the dead host — and ``replayed_frames`` how many replay dispatches
    rebuilding that state cost (their bytes appear under the ``replay_*``
    kinds of the same ledger).
    """

    host: int
    round_index: int
    reason: str
    repin: Dict[int, int]
    replayed_frames: int


@dataclass
class WireLedger:
    """Append-only record of every frame sent over runner sockets."""

    records: List[WireRecord] = field(default_factory=list)
    #: Recovered runner deaths, in the order they were handled.  Empty on a
    #: failure-free run.
    recovery: List[RecoveryEvent] = field(default_factory=list)

    def record_recovery(
        self,
        *,
        host: int,
        round_index: int,
        reason: str,
        repin: Dict[int, int],
        replayed_frames: int,
    ) -> RecoveryEvent:
        """Append one recovered-death event and return it."""
        event = RecoveryEvent(
            host=int(host),
            round_index=int(round_index),
            reason=str(reason),
            repin={int(k): int(v) for k, v in repin.items()},
            replayed_frames=int(replayed_frames),
        )
        self.recovery.append(event)
        return event

    def record(
        self,
        *,
        round_index: int,
        host: int,
        direction: str,
        kind: str,
        n_bytes: int,
        raw_bytes: Optional[int] = None,
        codec: str = "none",
    ) -> WireRecord:
        """Append one frame record and return it."""
        rec = WireRecord(
            round_index=int(round_index),
            host=int(host),
            direction=str(direction),
            kind=str(kind),
            n_bytes=int(n_bytes),
            raw_bytes=None if raw_bytes is None else int(raw_bytes),
            codec=str(codec),
        )
        self.records.append(rec)
        return rec

    # ------------------------------------------------------------------
    # Aggregations (physical / encoded bytes)
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Total wire bytes across all frames and rounds (encoded sizes)."""
        return int(sum(r.n_bytes for r in self.records))

    def bytes_by_round(self) -> Dict[int, int]:
        """Total wire bytes per protocol round."""
        out: Dict[int, int] = {}
        for r in self.records:
            out[r.round_index] = out.get(r.round_index, 0) + r.n_bytes
        return out

    def bytes_by_host(self) -> Dict[int, int]:
        """Total wire bytes exchanged with each runner host."""
        out: Dict[int, int] = {}
        for r in self.records:
            out[r.host] = out.get(r.host, 0) + r.n_bytes
        return out

    def bytes_by_kind(self) -> Dict[str, int]:
        """Total wire bytes per frame kind."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + r.n_bytes
        return out

    def bytes_by_host_kind(self) -> Dict[int, Dict[str, int]]:
        """Per-host wire bytes broken down by frame kind.

        The report layer's shape: one inner dict per runner host mapping
        each frame kind that host exchanged to its byte total.
        """
        out: Dict[int, Dict[str, int]] = {}
        for r in self.records:
            per_host = out.setdefault(r.host, {})
            per_host[r.kind] = per_host.get(r.kind, 0) + r.n_bytes
        return out

    def bytes_by_round_host(self) -> Dict[int, Dict[int, int]]:
        """Wire bytes per round, broken down by runner host."""
        out: Dict[int, Dict[int, int]] = {}
        for r in self.records:
            per_round = out.setdefault(r.round_index, {})
            per_round[r.host] = per_round.get(r.host, 0) + r.n_bytes
        return out

    def bytes_by_direction(self) -> Dict[str, int]:
        """Total wire bytes split into dispatch (send) and result (recv) traffic."""
        sent = sum(r.n_bytes for r in self.records if r.direction == "send")
        received = sum(r.n_bytes for r in self.records if r.direction == "recv")
        return {"send": int(sent), "recv": int(received)}

    # ------------------------------------------------------------------
    # Aggregations (raw / pre-codec bytes)
    # ------------------------------------------------------------------

    def total_raw_bytes(self) -> int:
        """Total bytes the recorded frames would occupy uncompressed."""
        return int(sum(r.raw_bytes for r in self.records))

    def raw_bytes_by_kind(self) -> Dict[str, int]:
        """Pre-codec bytes per frame kind."""
        out: Dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + r.raw_bytes
        return out

    def raw_bytes_by_direction(self) -> Dict[str, int]:
        """Pre-codec bytes split into dispatch and result traffic."""
        sent = sum(r.raw_bytes for r in self.records if r.direction == "send")
        received = sum(r.raw_bytes for r in self.records if r.direction == "recv")
        return {"send": int(sent), "recv": int(received)}

    def compression_by_kind(self) -> Dict[str, float]:
        """Raw-over-encoded ratio per frame kind (1.0 = nothing saved)."""
        raw = self.raw_bytes_by_kind()
        enc = self.bytes_by_kind()
        return {
            kind: (raw[kind] / enc[kind]) if enc[kind] else 1.0
            for kind in raw
        }

    def compression_ratio(self) -> float:
        """Overall raw-over-encoded ratio of the run (1.0 = nothing saved)."""
        encoded = self.total_bytes()
        return (self.total_raw_bytes() / encoded) if encoded else 1.0

    def n_frames(self) -> int:
        """Number of frames recorded."""
        return len(self.records)

    def merge(self, other: "WireLedger") -> None:
        """Fold another wire ledger's frames (and recovery events) into this one."""
        self.records.extend(other.records)
        self.recovery.extend(other.recovery)

    def summary(self) -> Dict[str, object]:
        """Compact dictionary used by reports and benchmark output.

        ``total_bytes`` and every ``by_*`` entry are the physical (encoded)
        sizes; ``raw_bytes``/``raw_by_kind`` are their pre-codec twins and
        ``compression``/``compression_by_kind`` the resulting ratios.
        """
        return {
            "total_bytes": self.total_bytes(),
            "raw_bytes": self.total_raw_bytes(),
            "compression": self.compression_ratio(),
            "frames": self.n_frames(),
            "by_round": self.bytes_by_round(),
            "by_host": self.bytes_by_host(),
            "by_kind": self.bytes_by_kind(),
            "raw_by_kind": self.raw_bytes_by_kind(),
            "compression_by_kind": self.compression_by_kind(),
            "by_host_kind": self.bytes_by_host_kind(),
            "by_direction": self.bytes_by_direction(),
            "raw_by_direction": self.raw_bytes_by_direction(),
            "recovery": [
                {
                    "host": e.host,
                    "round": e.round_index,
                    "reason": e.reason,
                    "repin": dict(e.repin),
                    "replayed_frames": e.replayed_frames,
                }
                for e in self.recovery
            ],
        }


__all__ = ["FRAME_KINDS", "RecoveryEvent", "WireLedger", "WireRecord"]
