"""The long-lived per-host runner process of the cluster backend.

One runner is spawned per simulated host.  It connects back to the
coordinator over a unix-domain socket, announces itself, then serves
dispatch frames until it is told to shut down (or its socket dies with the
coordinator).  The task shapes are:

``("task", seq, fn, payload[, trace[, ns]])``
    A structure-free task (:func:`repro.runtime.run_tasks`): evaluate
    ``fn(payload)`` and reply ``("res", seq, value, extras)``.  Both the
    dispatched payload and the reply value are *content-addressed*
    (:class:`~repro.cluster.payloads.PayloadCache`): large components
    arrive either as ``(VAL, digest, blob)`` — stored in the runner's
    payload cache, mirrored coordinator-side — or as ``(REF, digest)``
    tuples resolved against it, so repeated payload content (center_g's
    collapse matrices, the state dicts its rounds bounce back and forth)
    crosses the socket once per pool lifetime.  The optional sixth ``ns``
    slot names the job namespace of a :class:`~repro.cluster.service.
    ClusterService` job sharing this pool: each namespace gets its own
    payload cache on both ends (one job's cache hits never depend on what
    another job shipped), and frames without the slot use the default
    ``""`` namespace — byte-identical to the historical shape.  The ``extras`` dict always
    carries a per-frame ``Timer`` with the runner's own overhead labels
    (``cluster:task``, plus ``cluster:encode`` for the payload
    decode/encode work) and — when the optional ``trace`` flag is truthy —
    a picklable :class:`~repro.obs.trace.TraceBuffer` of spans/counters the
    task recorded, which the coordinator absorbs onto its trace timeline.

``("site", seq, resident_key, sticky, dyn, evict)``
    One site's share of a protocol round.  ``sticky`` is the site's heavy
    immutable half — ``(shard, local_metric)`` — shipped **once** per
    protocol run and kept resident under ``resident_key``; later rounds send
    ``sticky=None`` and the runner reuses its cached copy, so the metric is
    never re-pickled round after round.  ``evict`` lists superseded keys to
    drop (a new run reusing the site slot), bounding resident memory by the
    number of live site slots.  ``dyn`` carries the per-round payload (task
    function, arguments, site state, RNG stream, inbox) — where the *state*
    slot is either a plain dict (first round, or residency was cleared) or a
    :data:`~repro.runtime.state.STATE_TOKEN_TAG` token ``(tag, epoch,
    writes, deleted)`` referencing the **mutable state this runner already
    holds** from the previous round, with the coordinator's write overlay
    applied on top.  After the task runs, the new state stays resident under
    ``resident_key`` at ``epoch + 1`` and the reply carries only a
    :data:`~repro.runtime.state.STATE_DIGEST_TAG` digest (keys, per-entry
    pickled sizes, the new epoch) — never the dict itself.  A service job's
    site frames carry their namespace as ``dyn["ns"]`` (absent for the
    default namespace), scoping the evict-time payload-cache drop to that
    job's cache.  The reply
    ``("site_res", seq, result, extras)`` also encodes every buffered
    site-to-coordinator payload *individually*, so the coordinator learns
    the exact serialized size of each semantic message (the ``n_bytes`` it
    stamps on the communication ledger).  ``extras`` mirrors the generic
    task reply: the frame's runner-overhead ``Timer`` plus, when
    ``dyn["trace"]`` is set, the task's
    :class:`~repro.obs.trace.TraceBuffer`.  The site's own timer
    additionally gains a ``cluster:encode`` label (outbox/digest encoding is
    genuine site-side work), so cluster site timers carry the serial labels
    plus ``cluster:*`` extras.

``("pull_state", seq, resident_key, epoch, keys)``
    Fault individual resident-state entries back to the coordinator (lazy
    proxy access, e.g. final solution extraction).  The epoch must match the
    resident copy — a stale proxy faulting after a newer round is an error,
    not silently newer data.  Reply ``("res", seq, {key: value})``.

``("clear_resident", seq)``
    Drop every resident entry — the sticky halves, the mutable state *and*
    the content-addressed payload cache.  Warm-pool slot eviction (a site
    frame naming superseded keys in ``evict``) drops the payload cache
    too: residency of any stripe ends together, so a re-dispatch after
    eviction honestly re-ships its bytes.

Every reply frame is encoded under the :class:`~repro.cluster.framing.WirePolicy`
resolved from the runner's (inherited) environment — site/task replies get
the compressing codec, state pulls and control frames stay uncompressed —
so both directions of a channel agree on codecs without negotiation.

When the coordinator's retry policy sets a heartbeat timeout (or a telemetry
session asks for runner resource samples), the runner is spawned with
:data:`~repro.cluster.recovery.HEARTBEAT_INTERVAL_ENV` in its environment
and a daemon thread sends unsolicited ``("hb", host_id, n[, sample])``
frames at that interval, so a runner stalled inside a long task (or wedged
by a SIGSTOP) is distinguishable from one that is merely busy.  With
:data:`~repro.obs.sampler.RESOURCE_SAMPLE_ENV` also set, each heartbeat
piggybacks one :func:`~repro.obs.sampler.read_resource_sample` dict — the
telemetry plane's runner-side RSS/CPU feed, costing zero extra round trips.
Heartbeat frames are accounted on the coordinator's wire ledger under the
``hb`` kind like every other frame (liveness-only heartbeats that arrive
before any run has attached a ledger are consumed unrecorded).  A send lock
serialises heartbeat frames with reply frames on the socket.

Failures inside a task are caught and relayed as ``("exc", seq, exc, tb)``
frames with the original exception object whenever it pickles; the runner
itself stays alive for the next frame.  The runner is started as a fresh
``python -m repro.cluster.runner`` subprocess: it inherits nothing from the
coordinator's address space, so anything it computes on genuinely arrived
through the socket — distributed memory, not shared memory with extra
steps.  A runner also exits on its own when the coordinator's socket
closes, so an abruptly killed coordinator never leaks runner processes.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import traceback
from typing import Any, Dict, Optional, Tuple

from repro.cluster.framing import Codec, FrameChannel, NONE_CODEC, WirePolicy, encode_payload
from repro.cluster.payloads import PayloadCache
from repro.cluster.recovery import HEARTBEAT_INTERVAL_ENV
from repro.obs.logs import LogBuffer, log_scope
from repro.obs.sampler import read_resource_sample, resource_samples_enabled
from repro.obs.trace import TraceBuffer, collector_scope
from repro.runtime.state import STATE_DIGEST_TAG, is_state_token
from repro.utils.timing import Timer


def _cache_for(payloads: Dict[str, PayloadCache], ns: str) -> PayloadCache:
    """The payload cache of one job namespace (``""`` = the default run)."""
    cache = payloads.get(ns)
    if cache is None:
        cache = payloads[ns] = PayloadCache()
    return cache


def _execute_generic(
    frame: Tuple, host_id: int, payloads: Dict[str, PayloadCache]
) -> Tuple:
    """Evaluate a ``("task", ...)`` frame; returns the response frame."""
    _, seq, fn, payload = frame[:4]
    trace_on = len(frame) > 4 and bool(frame[4])
    cache = _cache_for(payloads, frame[5] if len(frame) > 5 else "")
    frame_timer = Timer()
    with frame_timer.measure("cluster:encode"):
        payload = cache.decode(payload)
    if trace_on:
        buffer = TraceBuffer(origin=f"host-{host_id}")
        logbuf = LogBuffer(origin=f"host-{host_id}")
        with collector_scope(buffer), log_scope(logbuf):
            with buffer.span("task", fn=getattr(fn, "__name__", str(fn))):
                logbuf.log("debug", "task_start",
                           fn=getattr(fn, "__name__", str(fn)))
                with frame_timer.measure("cluster:task"):
                    value = fn(payload)
        extras: Dict[str, Any] = {"timer": frame_timer, "trace": buffer}
        if logbuf:
            extras["log"] = logbuf
    else:
        with frame_timer.measure("cluster:task"):
            value = fn(payload)
        extras = {"timer": frame_timer}
    # Content-address the reply the same way the dispatch arrived: state
    # dicts a later round ships back (center_g's round 2) then cost only
    # their digests in both directions.
    with frame_timer.measure("cluster:encode"):
        try:
            value = cache.encode(value)
        except Exception as exc:
            # Content addressing pickles each component up front, so an
            # unpicklable result fails here rather than at the socket —
            # relay it under the same label the send path uses.
            raise RuntimeError(
                f"task result could not be serialized: {exc!r}"
            ) from exc
    return ("res", seq, value, extras)


def _resolve_state(resident_key, dyn_state, resident_state: Dict[Any, Tuple[int, dict]]):
    """The state dict a site task runs against, honouring resident epochs."""
    if not is_state_token(dyn_state):
        return dict(dyn_state) if dyn_state else {}
    _, epoch, writes, deleted = dyn_state
    entry = resident_state.get(resident_key)
    if entry is None:
        raise RuntimeError(
            f"runner has no resident mutable state for {resident_key!r}; the "
            "coordinator must ship the state dict before referencing it by epoch"
        )
    held_epoch, state = entry
    if held_epoch != epoch:
        raise RuntimeError(
            f"resident state for {resident_key!r} is at epoch {held_epoch}, "
            f"but the dispatch references epoch {epoch}"
        )
    for key in deleted:
        state.pop(key, None)
    state.update(writes)
    return state


def _execute_site(
    frame: Tuple,
    resident: Dict[Any, Tuple],
    resident_state: Dict[Any, Tuple[int, dict]],
    host_id: int,
    payloads: Dict[str, PayloadCache],
    result_codec: Codec,
) -> Tuple:
    """Evaluate a ``("site", ...)`` frame against the resident caches."""
    from repro.runtime.tasks import SiteContext

    _, seq, resident_key, sticky, dyn, evict = frame
    for stale_key in evict:
        # The coordinator names superseded keys (a new protocol run reusing
        # this host's site slot), so resident memory stays bounded by the
        # number of live site slots, not the number of runs served.
        resident.pop(stale_key, None)
        resident_state.pop(stale_key, None)
    if evict:
        # Slot eviction ends payload residency too (the coordinator clears
        # its mirror at the same frame, so membership stays symmetric); a
        # re-dispatch after eviction re-ships its bytes.  Scoped to the
        # dispatching job's namespace: another job sharing the pool keeps
        # its cache.
        _cache_for(payloads, dyn.get("ns", "")).clear()
    if sticky is not None:
        if resident_key is not None:
            resident[resident_key] = sticky
    else:
        if resident_key not in resident:
            raise RuntimeError(
                f"runner has no resident state for {resident_key!r}; the "
                "coordinator must ship (shard, local_metric) before reusing it"
            )
        sticky = resident[resident_key]
    shard, local_metric = sticky

    trace_on = bool(dyn.get("trace"))
    buffer = TraceBuffer(origin=f"host-{host_id}") if trace_on else None
    logbuf = LogBuffer(origin=f"host-{host_id}") if trace_on else None
    frame_timer = Timer()
    ctx = SiteContext(
        site_id=dyn["site_id"],
        shard=shard,
        local_metric=local_metric,
        state=_resolve_state(resident_key, dyn["state"], resident_state),
        rng=dyn["rng"],
        inbox=dyn["inbox"],
        trace=buffer,
    )
    if buffer is not None:
        with collector_scope(buffer), log_scope(logbuf):
            with buffer.span("site_task", site=ctx.site_id):
                logbuf.log("debug", "site_task_start", site=ctx.site_id)
                with frame_timer.measure("cluster:task"):
                    value = dyn["fn"](ctx, *dyn["args"], **dyn["kwargs"])
    else:
        with frame_timer.measure("cluster:task"):
            value = dyn["fn"](ctx, *dyn["args"], **dyn["kwargs"])

    # Encoding the outbox and state digest is genuine site-side work the
    # serial path never pays; it lands in the site's own timer under a
    # ``cluster:`` label (so cluster site timers are the serial label set
    # plus ``cluster:*``) and in the frame timer the coordinator folds into
    # its per-host runner totals.
    with ctx.timer.measure("cluster:encode"), frame_timer.measure("cluster:encode"):
        # Encode each buffered transmission separately: the byte length of
        # one payload here is exactly the n_bytes the coordinator stamps on
        # the corresponding ledger message, and running the frame's codec
        # over the same blob prices its *encoded* size (n_bytes_encoded) —
        # per-message honesty for both columns of the raw/encoded split.
        outbox = []
        for out in ctx.outbox:
            blob = encode_payload(out.payload)
            if result_codec.wire_id != NONE_CODEC.wire_id:
                n_encoded = min(len(blob), len(result_codec.compress(blob)))
            else:
                n_encoded = len(blob)
            outbox.append((out.kind, blob, out.words, len(blob), n_encoded))

        if resident_key is not None:
            # The mutable state stays where it was produced; the coordinator
            # gets a digest (keys, per-entry pickled sizes, the new epoch)
            # and faults entries individually through "pull_state" on
            # demand.  The sizes are measured with the same encoder a fault
            # would use, so the digest prices each entry at its true wire
            # cost.
            previous = resident_state.get(resident_key)
            epoch = (previous[0] if previous is not None else 0) + 1
            resident_state[resident_key] = (epoch, ctx.state)
            sizes = {key: len(encode_payload(value_)) for key, value_ in ctx.state.items()}
            state_field: Any = (STATE_DIGEST_TAG, epoch, sizes)
        else:
            state_field = ctx.state

    result = {
        "site_id": ctx.site_id,
        "value": value,
        "state": state_field,
        "timer": ctx.timer,
        "rng": ctx.rng,
        "outbox": outbox,
    }
    extras: Dict[str, Any] = {"timer": frame_timer}
    if buffer is not None:
        extras["trace"] = buffer
    if logbuf:
        extras["log"] = logbuf
    return ("site_res", seq, result, extras)


def _execute_pull_state(frame: Tuple, resident_state: Dict[Any, Tuple[int, dict]]) -> Tuple:
    """Fault resident-state entries back to the coordinator (lazy proxy read)."""
    _, seq, resident_key, epoch, keys = frame
    entry = resident_state.get(resident_key)
    if entry is None:
        raise RuntimeError(
            f"runner holds no resident mutable state for {resident_key!r} "
            "(evicted, cleared, or never produced)"
        )
    held_epoch, state = entry
    if held_epoch != epoch:
        raise RuntimeError(
            f"resident state for {resident_key!r} advanced to epoch {held_epoch}; "
            f"the proxy faulting epoch {epoch} is stale"
        )
    missing = [key for key in keys if key not in state]
    if missing:
        raise KeyError(missing[0])
    return ("res", seq, {key: state[key] for key in keys})


def _exception_frame(seq: int, exc: BaseException) -> Tuple:
    """Relay a task failure, preserving the original exception when it pickles."""
    tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return ("exc", seq, None, tb)
    return ("exc", seq, exc, tb)


#: Reply codec per dispatch tag: answers travel under the same base kind's
#: codec as their request, so the coordinator's ledger prices both
#: directions of a kind consistently.
_REPLY_KIND = {"task": "task", "site": "site", "pull_state": "state_pull"}


def _heartbeat_interval() -> float:
    """Seconds between heartbeat frames (0 disables; from the environment)."""
    raw = os.environ.get(HEARTBEAT_INTERVAL_ENV, "")
    try:
        return float(raw) if raw else 0.0
    except ValueError:
        return 0.0


def _heartbeat_loop(
    channel: FrameChannel,
    host_id: int,
    send_lock: threading.Lock,
    stop: threading.Event,
    interval: float,
    with_samples: bool = False,
) -> None:
    """Send unsolicited liveness frames until told to stop (or the socket dies).

    With ``with_samples``, each frame carries one resource sample — the
    telemetry plane's runner-side feed, riding the liveness traffic that
    crosses the socket anyway.  Sampling failures degrade to a plain
    heartbeat: liveness must never depend on ``/proc`` cooperating.
    """
    n = 0
    while not stop.wait(interval):
        n += 1
        frame: Tuple = ("hb", host_id, n)
        if with_samples:
            try:
                frame = ("hb", host_id, n, read_resource_sample())
            except Exception:  # pragma: no cover - sampling must not kill liveness
                pass
        try:
            with send_lock:
                channel.send(frame)
        except OSError:
            return  # coordinator gone; the serve loop is exiting too


def serve(channel: FrameChannel, host_id: int) -> None:
    """Serve dispatch frames until shutdown or coordinator disconnect."""
    resident: Dict[Any, Tuple] = {}
    resident_state: Dict[Any, Tuple[int, dict]] = {}
    payloads: Dict[str, PayloadCache] = {}
    policy = WirePolicy.from_env()
    send_lock = threading.Lock()
    stop = threading.Event()

    def send(frame: Tuple, codec: Optional[Codec] = None) -> None:
        # All socket writes go through the send lock so heartbeat frames
        # never interleave with a reply frame's bytes.
        with send_lock:
            if codec is None:
                channel.send(frame)
            else:
                channel.send(frame, codec)

    interval = _heartbeat_interval()
    if interval > 0:
        threading.Thread(
            target=_heartbeat_loop,
            args=(channel, host_id, send_lock, stop, interval,
                  resource_samples_enabled()),
            daemon=True,
            name=f"runner-{host_id}-heartbeat",
        ).start()
    try:
        send(("hello", host_id))
        while True:
            try:
                frame, _, _, _ = channel.recv()
            except ConnectionError:
                return  # coordinator went away; nothing left to serve
            except Exception as exc:  # noqa: BLE001 - e.g. an unimportable task fn
                # The frame failed to decode before a sequence number was known,
                # so it cannot be answered; report why and die loudly instead of
                # leaving the coordinator a bare connection reset.
                tb = traceback.format_exc()
                try:
                    send(("fatal", f"frame decode failed: {exc!r}\n{tb}"))
                except OSError:
                    pass
                raise
            tag = frame[0]
            if tag == "shutdown":
                try:
                    send(("bye", host_id))
                except OSError:
                    pass
                return
            if tag == "clear_resident":
                resident.clear()
                resident_state.clear()
                payloads.clear()
                send(("res", frame[1], None))
                continue
            seq = frame[1]
            codec = policy.codec_for(_REPLY_KIND.get(tag, "control"))
            try:
                if tag == "task":
                    response = _execute_generic(frame, host_id, payloads)
                elif tag == "site":
                    response = _execute_site(
                        frame, resident, resident_state, host_id, payloads, codec
                    )
                elif tag == "pull_state":
                    response = _execute_pull_state(frame, resident_state)
                else:
                    raise RuntimeError(f"unknown frame tag {tag!r}")
            except BaseException as exc:  # noqa: BLE001 - relayed to the coordinator
                response = _exception_frame(seq, exc)
                codec = NONE_CODEC
            try:
                send(response, codec)
            except OSError:
                return  # coordinator gone mid-reply; nothing left to serve
            except Exception as exc:  # noqa: BLE001 - e.g. an unpicklable result
                # Frames are encoded before any byte hits the socket, so a
                # serialization failure leaves the stream clean: relay it as
                # this task's failure instead of dying and losing the host.
                send(
                    _exception_frame(
                        seq,
                        RuntimeError(f"task result could not be serialized: {exc!r}"),
                    )
                )
    finally:
        stop.set()


def runner_main(socket_path: str, host_id: int) -> None:
    """Entry point of a runner process: connect, serve, exit."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(socket_path)
    channel = FrameChannel(sock)
    try:
        serve(channel, host_id)
    finally:
        channel.close()


if __name__ == "__main__":  # pragma: no cover - exercised in a child process
    import sys

    runner_main(sys.argv[1], int(sys.argv[2]))


__all__ = ["runner_main", "serve"]
