"""The distributed-memory cluster backend.

:class:`ClusterBackend` implements the :class:`~repro.runtime.backends.ExecutionBackend`
interface by spawning one long-lived runner process per simulated host and
shipping every task over a length-prefixed unix-domain socket
(:mod:`repro.cluster.framing`).  Compared to the process pool it makes three
claims honest:

* **Distributed memory.**  Runners start as fresh interpreters
  (``python -m repro.cluster.runner``) and inherit nothing; every byte a
  site computes on arrived through its socket.
* **Wire-level byte accounting.**  Each dispatch and result frame's exact
  size is recorded in the :class:`~repro.cluster.wire.WireLedger` the caller
  supplies — the physically transmitted (codec-encoded) bytes *and* the
  bytes the frame would have cost uncompressed — and site results encode
  each buffered site-to-coordinator payload individually so the
  communication ledger can stamp per-message ``n_bytes`` (plus its
  codec-priced ``n_bytes_encoded``) next to the semantic word counts.
* **Codec frames + content-addressed payloads.**  Frames are encoded under
  a :class:`~repro.cluster.framing.WirePolicy` (site/task traffic
  compressed, latency-sensitive state pulls and control frames not; the
  ``REPRO_WIRE_CODEC`` environment override reaches the runners through
  their inherited environment), and every structure-free task payload and
  result is content-addressed against a per-host
  :class:`~repro.cluster.payloads.PayloadCache` mirrored on the runner —
  repeated payload content (center_g's collapse matrices and
  round-tripped state dicts) crosses the wire once per pool lifetime and
  costs a 16-byte digest afterwards.
* **Resident site state.**  A site's heavy immutable half — its shard and
  local metric — is shipped once per protocol run and kept resident on its
  runner (sites are pinned to hosts by ``site_id % n_hosts``).  The
  *mutable* half gets the same treatment: after a site task completes, its
  ``ctx.state`` stays on the runner and only a digest (keys, per-entry
  pickled sizes, a state epoch) crosses back; the next dispatch ships an
  epoch token instead of the dict, and the coordinator's ``Site.state``
  becomes a :class:`~repro.runtime.state.RemoteStateProxy` that faults
  individual entries over the wire only on explicit access.  Later rounds
  therefore pay wire cost only for what actually changed.

Tasks return futures (:meth:`submit_tasks` / :meth:`submit_site_pairs`), the
substrate of async round scheduling: the coordinator consumes completed
results in submission order while other hosts are still computing.

**Fault tolerance** is opt-in via ``retry=RetryPolicy(...)``.  By default a
runner that dies mid-round fails all of its in-flight futures with a
:class:`~repro.cluster.recovery.DeadHostError` naming the host, its
in-flight tasks and its last committed state epochs; sockets and the
scratch directory are cleaned up by :meth:`close` even then.  With recovery
enabled, death is *classified* instead: the backend keeps a per-site
dispatch log (:class:`~repro.cluster.recovery.SiteLog`), re-pins the dead
host's sites to survivors deterministically, replays each log from record 0
(re-shipping the sticky half, rewriting state-token epochs positionally and
carrying the same RNG streams over), verifies the replayed state against the
recorded digests, and resumes the round — results are bit-identical to the
no-failure run, and every replay frame is accounted in the wire ledger under
``replay_*`` kinds next to a :class:`~repro.cluster.wire.RecoveryEvent`
recording the re-pin map.  An optional heartbeat timeout catches runners
that are wedged but still connected, and a
:class:`~repro.cluster.recovery.FaultPlan` (or the ``REPRO_FAULT_PLAN``
environment knob) injects deterministic faults for tests and CI.
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import weakref
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.framing import (
    FrameChannel,
    WirePolicy,
    decode_payload,
    encode_frame,
    encode_payload,
)
from repro.cluster.loop import EventLoop, TimerHandle
from repro.cluster.payloads import PayloadCache
from repro.cluster.recovery import (
    DeadHostError,
    FaultPlan,
    HEARTBEAT_INTERVAL_ENV,
    RetryPolicy,
    SiteDispatchRecord,
    SiteLog,
    resolve_retry_policy,
)
from repro.cluster.wire import WireLedger
from repro.obs.sampler import RESOURCE_SAMPLE_ENV
from repro.runtime.backends import ExecutionBackend, default_worker_count
from repro.runtime.state import (
    RemoteStateProxy,
    STATE_TOKEN_TAG,
    is_state_digest,
    is_state_token,
    materialize_state,
)
from repro.utils.timing import Timer


class _HostDied(Exception):
    """Internal: a registration raced the target's death; the caller re-targets."""


class _Pending:
    """Book-keeping for one in-flight frame awaiting its response."""

    __slots__ = (
        "future", "wire", "round_index", "kind", "convert", "tracer", "t_send",
        # Job namespace the frame belongs to ("" for direct backend use):
        # routes the result's payload-cache decode and telemetry absorption
        # to the owning job's isolated accounting.
        "job",
        # Recovery book-keeping (None on fail-fast backends): the site log +
        # record a "site" frame belongs to, the (fn, payload, index) of a
        # re-dispatchable "task" frame, the (key, keys) of a re-issuable
        # state pull, and the fault-plan dispatch ordinal for after-triggers.
        "site_log", "record_index", "task_fn", "task_payload", "task_index",
        "pull_info", "fault_ordinal",
    )

    def __init__(self, future, wire, round_index, kind, convert, job=""):
        self.future = future
        self.wire = wire
        self.round_index = round_index
        self.kind = kind
        self.convert = convert
        self.job = job
        #: Set only on traced runs: the run tracer plus the dispatch instant
        #: (tracer clock), bracketing the frame's wire span on receipt.
        self.tracer = None
        self.t_send = 0.0
        self.site_log = None
        self.record_index = None
        self.task_fn = None
        self.task_payload = None
        self.task_index = None
        self.pull_info = None
        self.fault_ordinal = None


class _Host:
    """One runner process plus its loop-managed channel and pending map.

    The coordinator runs **no threads for this host**: its channel is
    registered with the backend's single :class:`EventLoop`, which reads
    result frames, flushes queued dispatch bytes and watches heartbeats for
    every host at once.
    """

    def __init__(self, host_id: int):
        self.host_id = host_id
        self.process: Optional[subprocess.Popen] = None
        self.channel: Optional[FrameChannel] = None
        self.pending: Dict[int, _Pending] = {}
        self.lock = threading.Lock()
        self.dead: Optional[str] = None
        #: Shared bookkeeping for this host's death, created by ``_mark_dead``
        #: when recovery is on: whichever thread replays one of the host's
        #: site logs (the recovery thread, or a racing dispatch/pull that got
        #: the log lock first) records its re-pin and frame count here, and
        #: the recovery thread emits the merged event.  Guarded by the
        #: backend's ``_retry_lock``.
        self.recovery_stats: Optional[Dict[str, Any]] = None
        #: Monotonic instant of the last frame (result or heartbeat) this
        #: host's socket produced; the heartbeat monitor compares it against
        #: the policy's timeout while work is in flight.
        self.last_seen = 0.0
        #: Accumulated runner-side frame overhead (``cluster:*`` labels from
        #: result-frame extras).  Touched only by the event-loop thread.
        self.runner_timer = Timer()
        self.resident_keys: Set[Any] = set()
        #: (job, site_id) -> resident key currently cached on the runner for
        #: that slot; a new key for the same slot evicts the old one remotely,
        #: so runner memory is bounded by live site slots, not runs served.
        #: The job namespace ("" for direct backend use) keeps concurrent
        #: jobs' identical site ids from evicting each other's state.
        self.resident_by_site: Dict[Tuple[str, int], Any] = {}
        #: Coordinator-side mirrors of the runner's content-addressed payload
        #: caches, one per job namespace.  Membership stays symmetric because
        #: both ends apply the same store-on-VAL rule at each frame, in FIFO
        #: frame order — and per-job caches keep one job's hits independent
        #: of what another job shipped.
        self.payloads: Dict[str, PayloadCache] = {}
        #: Serialises frame encode + enqueue: a frame encoded *after* another
        #: must also be enqueued after it, or a payload REF could cross the
        #: socket before the VAL that defined it.
        self.encode_lock = threading.Lock()
        #: ``(wire, tracer, round_index, job)`` captured atomically by the
        #: last dispatch to this host, so the event loop can account heartbeat
        #: frames against the same ledger/tracer pair every other frame of
        #: the run uses — the hb accounting inherits the run's byte-parity
        #: guarantee by construction.  ``(None, None, 0, "")`` until the
        #: first dispatch: heartbeats before any run are liveness-only.  The
        #: job slot lets a finishing job detach only its own accounting.
        self.hb_account: Tuple[Optional[WireLedger], Optional[Any], int, str] = (
            None, None, 0, "",
        )

    def payload_cache(self, job: str = "") -> PayloadCache:
        """The content-addressed payload cache mirror for one job namespace."""
        cache = self.payloads.get(job)
        if cache is None:
            cache = self.payloads[job] = PayloadCache()
        return cache


class ClusterBackend(ExecutionBackend):
    """Run site tasks on one long-lived runner process per simulated host."""

    name = "cluster"

    def __init__(
        self,
        n_hosts: Optional[int] = None,
        *,
        start_timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if n_hosts is not None and n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        self.n_hosts = n_hosts or default_worker_count()
        self.start_timeout = float(start_timeout)
        #: Per-frame-kind codec choices; runners resolve the same policy from
        #: the environment they inherit, so both directions agree.
        self.wire_policy = WirePolicy.from_env()
        #: How runner death is treated: ``None`` resolves to the historical
        #: fail-fast contract; a :class:`RetryPolicy` opts into recovery.
        self.retry = resolve_retry_policy(retry)
        #: Deterministic fault injection; defaults to the ``REPRO_FAULT_PLAN``
        #: environment knob (``None`` when unset — no faults).
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._hosts: Optional[List[_Host]] = None
        self._socket_dir: Optional[str] = None
        self._seq = 0
        self._submit_lock = threading.Lock()
        self._start_lock = threading.Lock()
        #: resident_key -> weakref of the *current-epoch* proxy for that
        #: key's mutable state; used to materialise proxies before their
        #: runner-side copy is evicted or cleared.
        self._live_state: Dict[Any, "weakref.ref[RemoteStateProxy]"] = {}
        self._state_lock = threading.Lock()
        #: resident_key -> replayable dispatch log (recovery-enabled backends
        #: only; fail-fast backends never pay the logging cost).
        self._site_logs: Dict[Any, SiteLog] = {}
        self._logs_lock = threading.Lock()
        self._failures = 0
        self._retry_lock = threading.Lock()
        #: Terminal reason once the retry budget is exhausted: every later
        #: replay attempt raises it instead of recovering.
        self._exhausted: Optional[str] = None
        #: The single selector loop multiplexing every runner channel; one
        #: daemon thread regardless of ``n_hosts``.
        self._loop: Optional[EventLoop] = None
        #: Periodic heartbeat-silence check registered on the loop (only when
        #: the retry policy configures a timeout).
        self._monitor_timer: Optional[TimerHandle] = None
        self._recovery_threads: List[threading.Thread] = []
        #: Telemetry session (``telemetry=`` driver argument); ``None`` when
        #: the live plane is off.  When set, runners are spawned with
        #: resource sampling on their heartbeats and runner log buffers are
        #: forwarded into the session's run log.
        self.telemetry: Optional[Any] = None
        #: job namespace -> telemetry session for runs admitted through the
        #: cluster service; frames of a job report into *its* session only.
        self._telemetry_by_job: Dict[str, Any] = {}

    def set_telemetry(self, telemetry: Optional[Any]) -> None:
        """Install a telemetry session (the ``telemetry=`` argument lands here).

        Runner-side effects — heartbeat-piggybacked resource samples and the
        heartbeat interval itself — are inherited through the child
        environment at spawn time, so a session installed after the pool
        started only gains the coordinator-side features for already-running
        hosts; construct the backend before the first dispatch (or pass
        ``telemetry=`` to the driver, which does) to sample runners too.
        """
        self.telemetry = telemetry if (telemetry is not None
                                       and getattr(telemetry, "enabled", False)) else None

    def set_job_telemetry(self, job: str, telemetry: Optional[Any]) -> None:
        """Install (or remove, with ``None``) one job's telemetry session.

        Result-frame extras of that job — forwarded runner logs — land in
        *its* session's run log only, never a concurrent job's.  Runner
        resource samples ride host-level heartbeats that belong to no single
        job, so they land in every installed session (shared-infrastructure
        metrics, not job data).
        """
        if telemetry is not None and getattr(telemetry, "enabled", False):
            self._telemetry_by_job[job] = telemetry
        else:
            self._telemetry_by_job.pop(job, None)

    def _session_for(self, job: str) -> Optional[Any]:
        """The telemetry session one job's frames report into."""
        if job:
            return self._telemetry_by_job.get(job)
        return self.telemetry

    def detach_run_accounting(self, job: Optional[str] = None) -> None:
        """Stop accounting heartbeats against the current run's ledger/tracer.

        Called when a run's backend scope exits (see
        :func:`repro.runtime.backends.backend_scope`).  Taking each host
        lock makes this a barrier: a heartbeat being recorded concurrently
        completes first, so after this returns the finished run's ledger and
        trace byte totals are frozen — still bit-for-bit equal — while the
        warm pool's later heartbeats go back to liveness-only.  With ``job``
        given, only hosts whose captured accounting belongs to that job are
        detached — a finishing job on a shared service pool never freezes a
        concurrent job's heartbeat accounting.
        """
        if self._hosts is None:
            return
        for host in self._hosts:
            with host.lock:
                if job is None or host.hb_account[3] == job:
                    host.hb_account = (None, None, 0, "")

    def _absorb_resource_sample(self, host: _Host, sample: Any) -> None:
        """Land one heartbeat-piggybacked runner sample on the run timeline(s).

        Only the event-loop thread touches these gauges, so the manual
        running max on ``peak_rss_bytes`` is race-free.  Samples are
        host-level truth that belongs to no single job, so every installed
        session — the pool's own plus any per-job ones — receives them.
        """
        if not isinstance(sample, dict):
            return
        sessions = [self.telemetry] if self.telemetry is not None else []
        for session in self._telemetry_by_job.values():
            if not any(session is seen for seen in sessions):
                sessions.append(session)
        for session in sessions:
            tracer = session.tracer
            if tracer is None or not getattr(tracer, "enabled", False):
                continue
            origin = f"host-{host.host_id}"
            tracer.event("resource_sample", origin=origin, **sample)
            prefix = f"resource.{origin}."
            for field in ("rss_bytes", "cpu_s", "n_threads", "n_fds"):
                if field in sample:
                    tracer.gauge(prefix + field, sample[field])
            rss = sample.get("rss_bytes", -1.0)
            peak_key = prefix + "peak_rss_bytes"
            if rss > tracer.metrics.gauges.get(peak_key, 0.0):
                tracer.gauge(peak_key, rss)

    def set_retry_policy(self, retry: Optional[RetryPolicy]) -> None:
        """Install a retry policy (the ``retry=`` driver argument lands here).

        Takes effect immediately for death handling and replay.  The
        heartbeat *send* interval is inherited by runner processes at spawn
        time, so a ``heartbeat_timeout`` set after the pool started detects
        silent hosts only between frames of already-running work — construct
        the backend with ``retry=`` when long single tasks must be guarded.
        """
        self.retry = resolve_retry_policy(retry)
        if self._hosts is not None:
            self._ensure_monitor()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def socket_dir(self) -> Optional[str]:
        """Scratch directory holding the per-host sockets (None when stopped)."""
        return self._socket_dir

    def dead_hosts(self) -> Dict[int, str]:
        """``host_id -> death reason`` for every host observed dead.

        Empty for a healthy (or never-started, or closed) pool.  The
        cluster service uses this to retire a fail-fast pool whose hosts
        died instead of handing the wreck to the next admitted job.
        """
        if self._hosts is None:
            return {}
        return {
            host.host_id: host.dead
            for host in self._hosts
            if host.dead is not None
        }

    def _runner_environment(self) -> Dict[str, str]:
        """Child environment: mirror the coordinator's import path.

        Task functions cross the wire as qualified names, so the runner must
        be able to import every module the coordinator can (``repro`` itself,
        but also e.g. a caller's own task modules).  The coordinator's full
        ``sys.path`` becomes the runner's ``PYTHONPATH``; the empty entry
        (script-directory convention) is pinned to the current directory.
        When the retry policy configures a heartbeat timeout, the runner is
        asked to send unsolicited heartbeats at a quarter of it, so a host
        busy with one long task never looks silent.  An installed telemetry
        session *also* forces heartbeats on (at its sample interval, or the
        retry-derived interval if that is tighter) and asks each one to
        carry a resource sample — the runner-side feed of the live plane.
        """
        entries = []
        for entry in sys.path:
            entries.append(entry if entry else os.getcwd())
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(entries))
        timeout = self.retry.heartbeat_timeout
        interval = max(0.05, timeout / 4.0) if timeout is not None else None
        if self.telemetry is not None:
            wanted = max(0.01, float(self.telemetry.sample_interval))
            interval = wanted if interval is None else min(interval, wanted)
            env[RESOURCE_SAMPLE_ENV] = "1"
        if interval is not None:
            env[HEARTBEAT_INTERVAL_ENV] = f"{interval:.3f}"
        return env

    def _ensure_started(self) -> List[_Host]:
        hosts = self._hosts
        if hosts is not None:
            return hosts
        with self._start_lock:
            # Concurrent service jobs race the warm pool's first dispatch;
            # exactly one spawns the runners, the rest adopt them.
            if self._hosts is not None:
                return self._hosts
            return self._start_locked()

    def _start_locked(self) -> List[_Host]:
        socket_dir = tempfile.mkdtemp(prefix="repro-cluster-")
        env = self._runner_environment()
        hosts: List[_Host] = []
        try:
            for host_id in range(self.n_hosts):
                host = _Host(host_id)
                path = os.path.join(socket_dir, f"h{host_id}.sock")
                listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    listener.bind(path)
                    listener.listen(1)
                    listener.settimeout(self.start_timeout)
                    # A fresh interpreter per host (not a fork): the runner
                    # inherits no address space, so everything it computes on
                    # demonstrably arrived through its socket.
                    host.process = subprocess.Popen(
                        [sys.executable, "-m", "repro.cluster.runner", path, str(host_id)],
                        env=env,
                    )
                    try:
                        conn, _ = listener.accept()
                    except socket.timeout:
                        exitcode = host.process.poll()
                        raise RuntimeError(
                            f"cluster host {host_id} failed to connect within "
                            f"{self.start_timeout}s (exit code {exitcode})"
                        ) from None
                finally:
                    listener.close()
                host.channel = FrameChannel(conn)
                hello, _, _, _ = host.channel.recv()
                if hello != ("hello", host_id):
                    raise RuntimeError(
                        f"cluster host {host_id} sent a bad handshake: {hello!r}"
                    )
                host.last_seen = time.monotonic()
                hosts.append(host)
        except BaseException:
            self._hosts = hosts  # let close() reap whatever did start
            self._socket_dir = socket_dir
            self.close()
            raise
        self._hosts = hosts
        self._socket_dir = socket_dir
        # One selector loop multiplexes every channel: switch the sockets to
        # non-blocking only now, after the blocking handshakes completed.
        loop = EventLoop()
        self._loop = loop
        for host in hosts:
            host.channel.set_nonblocking()
            loop.register_channel(
                host.channel,
                on_frames=lambda frames, host=host: self._handle_frames(host, frames),
                on_error=lambda exc, host=host: self._on_channel_error(host, exc),
            )
        loop.start()
        self._ensure_monitor()
        return hosts

    def _ensure_monitor(self) -> None:
        """Register the heartbeat-silence check when the policy asks for one."""
        loop = self._loop
        timeout = self.retry.heartbeat_timeout
        if timeout is None or self._hosts is None or loop is None:
            return
        if self._monitor_timer is not None:
            self._monitor_timer.cancel()
        interval = max(0.05, min(timeout / 4.0, 0.25))
        self._monitor_timer = loop.call_every(interval, self._check_heartbeats)

    def _check_heartbeats(self) -> None:
        """Kill hosts that go silent past the heartbeat timeout with work in flight.

        Runs as a periodic event-loop callback.  A healthy busy runner is
        never silent: result frames refresh ``last_seen``, and runners send
        unsolicited heartbeats between them.  An *idle* host is exempt —
        silence without in-flight work is normal — and registration of new
        work refreshes ``last_seen``, so the timer always measures silence
        while something was owed.
        """
        timeout = self.retry.heartbeat_timeout
        hosts = self._hosts
        if timeout is None or hosts is None:
            return
        now = time.monotonic()
        for host in hosts:
            if host.dead is not None:
                continue
            with host.lock:
                busy = bool(host.pending)
                last = host.last_seen
            if busy and last and now - last > timeout:
                if host.process is not None:
                    try:
                        host.process.kill()
                    except OSError:  # pragma: no cover - already gone
                        pass
                self._mark_dead(
                    host,
                    f"no frames or heartbeats for {now - last:.1f}s with tasks "
                    f"in flight (heartbeat timeout {timeout}s)",
                )

    def close(self) -> None:
        """Shut runners down and remove sockets/scratch dir.  Idempotent.

        One loop-shutdown path replaces the old per-host thread joins: stop
        the single event loop (joining its one thread), then — with no other
        thread touching the sockets — drain each live channel's queued bytes
        in blocking mode, send the shutdown frame, close the socket and reap
        the process.  After this returns the backend holds no threads and no
        file descriptors.
        """
        hosts, self._hosts = self._hosts, None
        socket_dir, self._socket_dir = self._socket_dir, None
        loop, self._loop = self._loop, None
        if self._monitor_timer is not None:
            self._monitor_timer.cancel()
            self._monitor_timer = None
        with self._state_lock:
            # Runner-resident state dies with the runners; attached proxies
            # raise a "backend is closed" error on their next fault instead
            # of silently re-spawning a pool that never held their state.
            self._live_state.clear()
        if loop is not None:
            loop.stop()
        if hosts is not None:
            for host in hosts:
                if host.channel is not None and host.dead is None:
                    # The loop is gone, so direct blocking writes cannot
                    # interleave with anything: flush whatever dispatch
                    # bytes it had not drained, then say goodbye.
                    try:
                        host.channel.set_blocking(2.0)
                        host.channel.flush_out()
                        host.channel.send(("shutdown",))
                    except (OSError, ConnectionError):
                        pass
            for host in hosts:
                if host.channel is not None:
                    host.channel.close()
                if host.process is not None:
                    self._reap(host.process)
                self._fail_pending(
                    host, f"cluster host {host.host_id} was shut down with tasks in flight"
                )
        for thread in self._recovery_threads:
            thread.join(timeout=5.0)
        self._recovery_threads = []
        if socket_dir is not None:
            shutil.rmtree(socket_dir, ignore_errors=True)

    @staticmethod
    def _reap(process: subprocess.Popen) -> None:
        """Bounded terminate→kill escalation for one runner process.

        A wedged runner — blocked on a dead socket, swapping, or SIGSTOPped —
        must never hang shutdown: the graceful window is short, SIGTERM gets
        one more short window (a *stopped* process cannot even handle it),
        and SIGKILL ends the argument.  The final wait is bounded too; a
        process that survives SIGKILL is the kernel's problem, not ours.
        """
        try:
            process.wait(timeout=2.0)
            return
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck runner
            pass
        process.terminate()
        try:
            process.wait(timeout=2.0)
            return
        except subprocess.TimeoutExpired:  # pragma: no cover - still stuck
            pass
        process.kill()
        try:
            process.wait(timeout=5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - unkillable
            pass

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def _fail_pending(self, host: _Host, reason: str) -> None:
        with host.lock:
            pending = sorted(host.pending.items())
            host.pending.clear()
        for _, entry in pending:
            if not entry.future.done():
                entry.future.set_exception(RuntimeError(reason))

    def _mark_dead(self, host: _Host, detail: str) -> None:
        """Classify one runner death: fail fast, or hand off to recovery.

        Idempotent — the first caller (reader EOF, sender EPIPE, heartbeat
        monitor, fatal frame) claims the death under the host lock and drains
        the pending map; later callers return immediately.  The death reason
        names the in-flight task ids, their rounds and the host's last
        committed state epoch per site, so a terminal failure is diagnosable
        from its message alone.
        """
        with host.lock:
            if host.dead is not None:
                return
            # Placeholder until the full reason is assembled below: anything
            # racing a submission in this window still sees a host-naming
            # message.
            host.dead = f"cluster host {host.host_id} died mid-round ({detail})"
            if self.retry.enabled and host.recovery_stats is None:
                # Created together with the death claim so a dispatch that
                # races the recovery thread to a site-log replay always has
                # somewhere to record its contribution.
                host.recovery_stats = {
                    "repin": {}, "frames": 0, "wire": None, "tracer": None,
                    "round": 0, "closed": False, "emitted": False,
                }
            pending = sorted(host.pending.items())
            host.pending.clear()
        exitcode = None
        if host.process is not None:
            try:
                exitcode = host.process.wait(timeout=1.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - still dying
                exitcode = host.process.poll()
        inflight = ", ".join(
            f"{entry.kind} seq {seq} (round {entry.round_index})"
            for seq, entry in pending
        ) or "none"
        reason = (
            f"cluster host {host.host_id} died mid-round ({detail}; runner exit "
            f"code {exitcode}); in-flight tasks: [{inflight}]; last committed "
            f"state epoch by site: {{{self._committed_epoch_note(host)}}}"
        )
        host.dead = reason
        policy = self.retry
        recover = policy.enabled and self._hosts is not None
        if recover:
            with self._retry_lock:
                self._failures += 1
                if self._failures > policy.max_retries:
                    self._exhausted = (
                        f"{reason}; retry budget exhausted "
                        f"({policy.max_retries} host failure(s) already recovered)"
                    )
                    recover = False
        if not recover:
            terminal = self._exhausted or reason
            task_ids = tuple(f"{entry.kind}#{seq}" for seq, entry in pending)
            for seq, entry in pending:
                self._clear_log_pending(entry)
                if not entry.future.done():
                    entry.future.set_exception(
                        DeadHostError(
                            terminal,
                            host_id=host.host_id,
                            round_index=entry.round_index,
                            epoch=self._log_epoch_for(entry),
                            task_ids=task_ids,
                        )
                    )
            return
        # Recovery runs off-thread: _mark_dead is called from reader/sender/
        # monitor threads whose loops must keep serving the surviving hosts.
        thread = threading.Thread(
            target=self._recover_host, args=(host, pending, reason),
            name=f"repro-cluster-recovery-{host.host_id}", daemon=True,
        )
        self._recovery_threads.append(thread)
        thread.start()

    # ------------------------------------------------------------------
    # Recovery: re-pinning and state-epoch replay
    # ------------------------------------------------------------------

    def _committed_epoch_note(self, host: _Host) -> str:
        """``site N: epoch E`` fragments for the host's resident site state."""
        notes = []
        for (job, site_id), key in sorted(host.resident_by_site.items()):
            with self._logs_lock:
                log = self._site_logs.get(key)
            epoch: Optional[int] = log.epoch if log is not None else None
            if epoch is None:
                with self._state_lock:
                    ref = self._live_state.get(key)
                proxy = ref() if ref is not None else None
                if proxy is not None:
                    epoch = proxy.epoch
            if epoch is not None:
                label = f"site {site_id}" if not job else f"{job}/site {site_id}"
                notes.append(f"{label}: epoch {epoch}")
        return "; ".join(notes) or "none"

    @staticmethod
    def _clear_log_pending(entry: _Pending) -> None:
        if entry.site_log is not None:
            pending = entry.site_log.pending
            if pending is not None and pending[1] is entry:
                entry.site_log.pending = None

    def _log_epoch_for(self, entry: _Pending) -> Optional[int]:
        return entry.site_log.epoch if entry.site_log is not None else None

    def _has_live_proxy(self, key: Any) -> bool:
        with self._state_lock:
            ref = self._live_state.get(key)
        proxy = ref() if ref is not None else None
        return proxy is not None and not proxy.detached

    def _host_by_id(self, host_id: Optional[int]) -> Optional[_Host]:
        hosts = self._hosts
        if hosts is None or host_id is None or not (0 <= host_id < len(hosts)):
            return None
        return hosts[host_id]

    def _repin_target(self, site_id: int) -> _Host:
        """Deterministic placement for a site: default pin, else survivors.

        The default ``site_id % n_hosts`` pin wins while its host lives;
        once dead, the site re-pins to ``alive[site_id % len(alive)]`` —
        a pure function of the site id and the set of dead hosts, so two
        coordinators observing the same deaths re-pin identically.
        """
        hosts = self._hosts
        if hosts is None:
            raise RuntimeError("the cluster backend is closed")
        default = hosts[site_id % len(hosts)]
        if default.dead is None:
            return default
        alive = [h for h in hosts if h.dead is None]
        if not alive:
            raise DeadHostError(
                f"no surviving cluster hosts to re-pin site {site_id} to "
                f"(last death: {default.dead})",
                host_id=default.host_id,
            )
        return alive[site_id % len(alive)]

    def _repin_target_index(self, index: int) -> _Host:
        """Deterministic placement for structure-free task ``index``."""
        hosts = self._hosts
        if hosts is None:
            raise RuntimeError("the cluster backend is closed")
        default = hosts[index % len(hosts)]
        if default.dead is None:
            return default
        alive = [h for h in hosts if h.dead is None]
        if not alive:
            raise DeadHostError(
                f"no surviving cluster hosts to re-dispatch task {index} to "
                f"(last death: {default.dead})",
                host_id=default.host_id,
            )
        return alive[index % len(alive)]

    def _ensure_located_locked(self, log: SiteLog) -> Optional[_Host]:
        """A live host holding ``log``'s resident state (caller holds log.lock).

        Returns the current location if it lives, replays the log onto the
        deterministic re-pin target if it died, or ``None`` when the key has
        never been dispatched (nothing resident anywhere yet).
        """
        if log.location is None:
            return None
        host = self._host_by_id(log.location)
        if host is not None and host.dead is None:
            return host
        target = self._repin_target(log.site_id)
        self._replay_log_locked(log, target)
        return target

    def _verify_replay_digest(
        self, log: SiteLog, index: int, epoch: Any, sizes: Dict[str, int]
    ) -> None:
        """Assert a replayed record reproduced the recorded state digest.

        Epochs are *not* compared — the replay target assigns its own
        monotonic sequence — but the digest's per-entry pickled sizes are the
        content fingerprint the original run committed, and determinism says
        they must match exactly.
        """
        expected = log.digests[index]
        if expected is None:
            return
        tracer = log.records[index].tracer
        if tracer is not None:
            tracer.inc("recovery.digest_checks")
        if dict(expected[1]) != dict(sizes):
            raise DeadHostError(
                f"replay of site {log.site_id} (resident key {log.key!r}) "
                f"diverged at record {index}: replayed state digest {sizes!r} "
                f"!= recorded digest {expected[1]!r}",
                host_id=log.location,
                round_index=log.records[index].round_index,
                epoch=expected[0],
            )

    def _replay_log_locked(
        self, log: SiteLog, target: _Host, adopt_final: Optional[Future] = None
    ) -> int:
        """Re-execute a site's dispatch log on ``target`` (caller holds log.lock).

        Replays every record from 0 — the first record necessarily shipped
        the full state dict, so a fresh host rebuilds from nothing — with
        state-token epochs rewritten positionally to the target's own epoch
        sequence and each replayed digest verified against the recorded one.
        Historical results are discarded; the final record resolves the
        original in-flight future (``log.pending`` or ``adopt_final``) via
        the regular site-result converter, and any still-live state proxy is
        rebound to the new location.  Returns the number of replayed frames.
        """
        if self._exhausted is not None:
            raise DeadHostError(
                self._exhausted, host_id=log.location, epoch=log.epoch
            )
        if not self.retry.enabled:
            dead = self._host_by_id(log.location)
            raise DeadHostError(
                dead.dead if dead is not None and dead.dead is not None
                else f"cluster host {log.location} is gone",
                host_id=log.location,
                epoch=log.epoch,
            )
        origin = self._host_by_id(log.location)
        pending = log.pending
        log.pending = None
        resolve = pending[1].future if pending is not None else adopt_final
        final_index = len(log.records) - 1
        epoch = 0
        replayed = 0
        for index, rec in enumerate(log.records):
            state = rec.state
            if is_state_token(state):
                # Record i's token referenced the epoch record i-1 produced;
                # on the target that is whatever epoch the previous replay
                # just returned.
                state = (STATE_TOKEN_TAG, epoch, state[2], state[3])
            evict: List[Any] = []
            sticky = None
            if log.key not in target.resident_keys:
                sticky = log.sticky
                stale = target.resident_by_site.get((log.job, log.site_id))
                if stale is not None and stale != log.key:
                    self._detach_resident_key(stale)
                    evict.append(stale)
                    target.resident_keys.discard(stale)
                    with self._logs_lock:
                        self._site_logs.pop(stale, None)
                target.resident_keys.add(log.key)
                target.resident_by_site[(log.job, log.site_id)] = log.key
            dyn = {
                "site_id": rec.site_id,
                "fn": rec.fn,
                "args": rec.args,
                "kwargs": rec.kwargs,
                "state": state,
                "rng": decode_payload(rec.rng_bytes),
                "inbox": rec.inbox,
            }
            is_final = index == final_index and resolve is not None
            if is_final and rec.traced:
                dyn["trace"] = True
            if log.job:
                dyn["ns"] = log.job
            convert = None
            if is_final:
                convert = self._site_result_converter(
                    target, log.key, log.site_id, rec.wire, rec.round_index,
                    rec.tracer, log.job,
                )

            def build_replay(seq, target=target, key=log.key, sticky=sticky,
                             dyn=dyn, evict=evict):
                if evict:
                    target.payload_cache(log.job).clear()
                return ("site", seq, key, sticky, dyn, evict)

            if rec.tracer is not None:
                rec.tracer.inc("recovery.replayed_frames")
            future = self._submit_frame(
                target, build_replay,
                wire=rec.wire, round_index=rec.round_index, kind="replay",
                convert=convert, tracer=rec.tracer, job=log.job,
            )
            replayed += 1
            result = future.result()  # raises if the target died too
            if is_final:
                proxy = result.state
                new_epoch = getattr(proxy, "epoch", None)
                new_sizes = dict(getattr(proxy, "sizes", None) or {})
                if new_epoch is not None:
                    self._verify_replay_digest(log, index, new_epoch, new_sizes)
                    log.digests[index] = (int(new_epoch), new_sizes)
                    epoch = int(new_epoch)
                if not resolve.done():
                    resolve.set_result(result)
            else:
                state_out = result["state"]
                if is_state_digest(state_out):
                    _, new_epoch, new_sizes = state_out
                    self._verify_replay_digest(log, index, new_epoch, dict(new_sizes))
                    epoch = int(new_epoch)
        log.epoch = epoch
        log.location = target.host_id
        if origin is not None and origin.recovery_stats is not None:
            # Whoever replayed this log — the recovery thread, or a dispatch/
            # pull that beat it to the log lock — contributes to the death's
            # shared bookkeeping; the recovery thread emits the merged event.
            with self._retry_lock:
                stats = origin.recovery_stats
                stats["repin"][log.site_id] = target.host_id
                stats["frames"] += replayed
                if log.records:
                    stats["round"] = max(stats["round"], log.records[-1].round_index)
                    if stats["wire"] is None:
                        stats["wire"] = log.records[-1].wire
                    if stats["tracer"] is None:
                        stats["tracer"] = log.records[-1].tracer
        if pending is None and adopt_final is None:
            # Every record was already complete: the run may still hold a
            # live proxy over the old location — point it at the replayed
            # copy (same content, new host, new epoch).
            with self._state_lock:
                ref = self._live_state.get(log.key)
            proxy = ref() if ref is not None else None
            if proxy is not None and not proxy.detached and proxy.owner() is self:
                rec = log.records[final_index]
                proxy.rebind(
                    lambda keys, host=target, key=log.key, epoch=epoch, rec=rec:
                        self._pull_state_entries(
                            host, key, epoch, keys, rec.wire, rec.round_index,
                            rec.tracer, log.job,
                        ),
                    epoch=epoch,
                )
        return replayed

    def _recover_host(self, host: _Host, pending: List[Tuple[int, _Pending]],
                      reason: str) -> None:
        """Recover one dead host: re-pin, replay, re-dispatch, account.

        Runs on its own thread.  Order matters: frames that need no site-log
        lock resolve first (failing another recovery's in-flight replay
        frames promptly — that thread owns the log lock we would otherwise
        wait on), then every site log located on the dead host replays onto
        its re-pin target, then in-flight state pulls re-issue against the
        replayed copies.  Any failure here fails the affected futures with a
        :class:`DeadHostError` — never silently.
        """
        policy = self.retry
        repin: Dict[int, int] = {}
        replayed = 0
        tracer = next((e.tracer for _, e in pending if e.tracer is not None), None)
        wire = next((e.wire for _, e in pending if e.wire is not None), None)
        round_hint = max((e.round_index for _, e in pending), default=0)
        t0 = tracer.clock() if tracer is not None else 0.0
        try:
            if policy.backoff_s > 0:
                time.sleep(policy.backoff_s)
            site_entries: List[_Pending] = []
            pull_entries: List[_Pending] = []
            for seq, entry in pending:
                if entry.future.done():
                    continue
                if entry.kind == "site" and entry.site_log is not None:
                    site_entries.append(entry)
                elif entry.kind in ("task", "replay_task") and entry.task_fn is not None:
                    self._redispatch_task(entry)
                elif entry.kind in ("state_pull", "replay_pull") and entry.pull_info is not None:
                    pull_entries.append(entry)
                else:
                    entry.future.set_exception(
                        DeadHostError(
                            f"{reason}; this in-flight frame ({entry.kind}) is "
                            "not replayable",
                            host_id=host.host_id,
                            round_index=entry.round_index,
                        )
                    )
            for (_, site_id), key in sorted(host.resident_by_site.items()):
                with self._logs_lock:
                    log = self._site_logs.get(key)
                if log is None:
                    continue
                with log.lock:
                    if log.location != host.host_id:
                        continue  # already re-pinned (racing dispatch replayed it)
                    if (
                        host.hb_account[0] is None
                        and log.pending is None
                        and not self._has_live_proxy(key)
                    ):
                        # Nothing waits on this state, nobody can read it, and
                        # no run is accounting against this host (the
                        # dispatch-time (wire, tracer) pair is cleared by
                        # ``detach_run_accounting`` when a run ends): skip the
                        # replay, let the next dispatch re-ship the full
                        # context through the ordinary miss path.  While a run
                        # IS active the log replays even with nothing in
                        # flight — the run may well dispatch to this site next
                        # round, and the ledger must show the death (exactly
                        # one recovery event plus replay frames) no matter how
                        # the reader thread races that dispatch.
                        log.location = None
                        continue
                    # Replay contributions (re-pin, frame count, round/wire/
                    # tracer evidence) land in ``host.recovery_stats``.
                    self._replay_log_locked(log, self._repin_target(site_id))
            for entry in site_entries:
                if not entry.future.done():  # pragma: no cover - defensive
                    entry.future.set_exception(
                        DeadHostError(
                            f"{reason}; its site log could not be replayed",
                            host_id=host.host_id,
                            round_index=entry.round_index,
                        )
                    )
            for entry in pull_entries:
                self._reissue_pull(entry, reason)
        except BaseException as exc:  # noqa: BLE001 - relayed to every waiter
            error = exc if isinstance(exc, DeadHostError) else DeadHostError(
                f"recovery of cluster host {host.host_id} failed: {exc!r} "
                f"(original death: {reason})",
                host_id=host.host_id,
            )
            for _, entry in pending:
                self._clear_log_pending(entry)
                if not entry.future.done():
                    entry.future.set_exception(error)
            return
        with self._retry_lock:
            # Merge replay contributions — including those from dispatches or
            # pulls that beat this thread to a site-log replay, which would
            # otherwise leave the event empty.  Pass 2 above blocked on every
            # log's lock, so all replays of this host's logs are recorded.
            stats = host.recovery_stats
            if stats is not None:
                repin.update(stats["repin"])
                replayed += stats["frames"]
                round_hint = max(round_hint, stats["round"])
                if wire is None:
                    wire = stats["wire"]
                if tracer is None:
                    tracer = stats["tracer"]
            if wire is None:
                # Nothing in flight and nothing replayed, but a run may still
                # be accounting against this host: fall back to the (wire,
                # tracer) pair captured at its last dispatch so a mid-run
                # death always shows in the ledger.  Cleared at run end by
                # ``detach_run_accounting``, so idle warm-pool deaths stay
                # off finished runs' books.
                hb_wire, hb_tracer, hb_round, _ = host.hb_account
                wire = hb_wire
                if tracer is None:
                    tracer = hb_tracer
                round_hint = max(round_hint, hb_round)
            if stats is not None:
                # Later contributors (a task registration that raced the
                # death after this merge) emit the event themselves iff we
                # are not about to.
                stats["closed"] = True
                stats["emitted"] = wire is not None
        if wire is not None:
            wire.record_recovery(
                host=host.host_id, round_index=round_hint, reason=reason,
                repin=repin, replayed_frames=replayed,
            )
        if tracer is not None:
            tracer.inc("recovery.host_failures")
            tracer.inc("recovery.repinned_sites", len(repin))
            tracer.add_span(
                "recovery", t0, tracer.clock(), origin="coordinator",
                host=host.host_id, round=round_hint,
                sites=len(repin), frames=replayed,
            )
            tracer.event(
                "host_death", host=host.host_id, round=round_hint,
                repinned=len(repin), replayed=replayed,
            )

    def _redispatch_task(self, entry: _Pending) -> None:
        """Re-dispatch one in-flight structure-free task to a survivor."""
        target = self._repin_target_index(entry.task_index)
        fn, payload = entry.task_fn, entry.task_payload
        traced = entry.tracer is not None
        job = entry.job

        def build(seq, target=target):
            counts: Dict[str, int] = {}
            encoded = target.payload_cache(job).encode(payload, counts=counts)
            if job:
                return ("task", seq, fn, encoded, traced, job)
            if traced:
                return ("task", seq, fn, encoded, True)
            return ("task", seq, fn, encoded)

        if entry.tracer is not None:
            entry.tracer.inc("recovery.replayed_frames")
        future = self._submit_frame(
            target, build,
            wire=entry.wire, round_index=entry.round_index, kind="replay_task",
            convert=entry.convert, tracer=entry.tracer, job=job,
            entry_extra={
                "task_fn": fn, "task_payload": payload,
                "task_index": entry.task_index,
            },
        )
        self._bridge_future(future, entry.future)

    def _note_death_observed(
        self, host: _Host, wire, tracer, round_index: int
    ) -> None:
        """Make sure ``host``'s death shows in the ledger exactly once.

        Called by any dispatch that *observes* a death — a registration that
        raced it, or a later placement that routes around the dead host.
        Contributes this dispatch's round/wire/tracer to the death's shared
        bookkeeping if the recovery thread has not merged yet (it emits the
        single merged event), or emits the recovery event here if the
        thread closed without ledger evidence (nothing was in flight and
        nothing was resident, so it had no wire to record on).  The
        ``emitted`` flag under ``_retry_lock`` keeps the event unique.
        """
        emit = False
        with self._retry_lock:
            stats = host.recovery_stats
            if stats is not None:
                if not stats["closed"]:
                    stats["round"] = max(stats["round"], round_index)
                    if stats["wire"] is None:
                        stats["wire"] = wire
                    if stats["tracer"] is None:
                        stats["tracer"] = tracer
                elif not stats["emitted"] and wire is not None:
                    stats["emitted"] = True
                    emit = True
        if emit:
            wire.record_recovery(
                host=host.host_id, round_index=round_index,
                reason=host.dead, repin={}, replayed_frames=0,
            )
            if tracer is not None:
                tracer.inc("recovery.host_failures")
                tracer.event(
                    "host_death", host=host.host_id,
                    round=round_index, repinned=0, replayed=0,
                )

    def _adopt_raced_task(self, host: _Host, entry: _Pending) -> None:
        """Adopt a task whose registration raced ``host``'s death.

        The reader thread can observe a death before the dispatching thread
        registers its entry, so ``_recover_host`` saw nothing in flight and
        may already have finished.  The frame never touched the wire.  Route
        it to a survivor through the regular re-dispatch path, with
        :meth:`_note_death_observed` keeping the death visible in the
        ledger.
        """
        self._note_death_observed(host, entry.wire, entry.tracer, entry.round_index)
        try:
            self._redispatch_task(entry)
        except DeadHostError as exc:
            if not entry.future.done():
                entry.future.set_exception(exc)

    def _reissue_pull(self, entry: _Pending, reason: str) -> None:
        """Re-issue one in-flight state pull against the replayed resident copy."""
        key, keys = entry.pull_info
        with self._logs_lock:
            log = self._site_logs.get(key)
        if log is None:
            entry.future.set_exception(
                DeadHostError(
                    f"{reason}; resident state {key!r} has no dispatch log to "
                    "replay its entries from",
                    host_id=None,
                    round_index=entry.round_index,
                )
            )
            return
        with log.lock:
            target = self._ensure_located_locked(log)
            epoch = log.epoch
        if target is None:  # pragma: no cover - a pull implies a dispatch
            entry.future.set_exception(
                DeadHostError(
                    f"{reason}; resident state {key!r} was never dispatched",
                    round_index=entry.round_index,
                )
            )
            return
        if entry.tracer is not None:
            entry.tracer.inc("recovery.replayed_frames")
        future = self._submit_frame(
            target,
            lambda seq, key=key, epoch=epoch, keys=keys: (
                "pull_state", seq, key, epoch, list(keys)
            ),
            wire=entry.wire, round_index=entry.round_index, kind="replay_pull",
            convert=None, tracer=entry.tracer, job=entry.job,
            entry_extra={"pull_info": (key, list(keys))},
        )
        self._bridge_future(future, entry.future)

    @staticmethod
    def _bridge_future(source: Future, destination: Future) -> None:
        """Resolve ``destination`` with whatever ``source`` produces."""

        def _copy(done: Future) -> None:
            if destination.done():
                return
            exc = done.exception()
            if exc is not None:
                destination.set_exception(exc)
            else:
                destination.set_result(done.result())

        source.add_done_callback(_copy)

    def _apply_faults(self, host: _Host, actions) -> None:
        """Execute matched fault-plan actions against one host."""
        for action in actions:
            if action.op == "kill":
                if host.process is not None:
                    try:
                        host.process.kill()
                    except OSError:  # pragma: no cover - already gone
                        pass
            elif action.op == "stall":
                if host.process is not None:
                    try:
                        host.process.send_signal(signal.SIGSTOP)
                    except OSError:  # pragma: no cover - already gone
                        pass
            elif action.op == "disconnect":
                if host.channel is not None:
                    try:
                        host.channel.close()
                    except OSError:  # pragma: no cover - already closed
                        pass
            elif action.op == "delay":
                time.sleep(action.seconds)

    def _on_channel_error(self, host: _Host, exc: BaseException) -> None:
        """Loop callback: a host's channel died (EOF, error, undecodable frame).

        A frame that cannot be decoded (unknown class, corrupt stream,
        MemoryError on a huge payload) must not be swallowed silently: that
        would leave every in-flight future unresolved and the caller blocked
        forever — it is classified as a host death like a socket error.
        """
        if host.dead is not None or self._hosts is None:
            return
        if isinstance(exc, ConnectionError):
            self._mark_dead(host, str(exc))
        else:
            self._mark_dead(host, f"result frame could not be decoded: {exc!r}")

    def _handle_frames(self, host: _Host, frames) -> None:
        """Loop callback: dispatch one batch of decoded frames from a host."""
        for frame, n_bytes, raw_bytes, codec in frames:
            if host.dead is not None:
                return
            self._handle_frame(host, frame, n_bytes, raw_bytes, codec)

    def _handle_frame(
        self, host: _Host, frame: Tuple, n_bytes: int, raw_bytes: int, codec: str
    ) -> None:
        """Process one received frame — the event-loop twin of the old reader body."""
        host.last_seen = time.monotonic()
        tag = frame[0]
        if tag == "hb":
            # Unsolicited runner heartbeat.  Accounted against the
            # (ledger, tracer) pair the last dispatch to this host
            # captured atomically — the same pair every other frame of
            # the run uses, so ledger/trace byte parity holds bit for
            # bit with heartbeats on.  Heartbeats arriving before any
            # dispatch (warm pool idling between runs) are liveness-only.
            # Under the host lock so detach_run_accounting() can provide
            # a barrier: once it returns, no heartbeat is being (or will
            # be) recorded against the finished run's ledger/tracer, and
            # their totals are frozen in agreement.
            with host.lock:
                hb_wire, hb_tracer, hb_round, _ = host.hb_account
                if hb_wire is not None:
                    hb_wire.record(
                        round_index=hb_round, host=host.host_id,
                        direction="recv", kind="hb",
                        n_bytes=n_bytes, raw_bytes=raw_bytes, codec=codec,
                    )
                    if hb_tracer is not None:
                        hb_tracer.inc("wire.bytes", raw_bytes)
                        hb_tracer.inc("wire.bytes.recv", raw_bytes)
                        hb_tracer.inc("wire.bytes.hb", raw_bytes)
                        hb_tracer.inc("wire.bytes_encoded", n_bytes)
                        hb_tracer.inc("wire.bytes_encoded.recv", n_bytes)
                        hb_tracer.inc("wire.bytes_encoded.hb", n_bytes)
            if len(frame) > 3 and frame[3]:
                self._absorb_resource_sample(host, frame[3])
            return
        if tag == "bye":
            return
        if tag == "fatal":
            self._mark_dead(host, frame[1])
            return
        seq = frame[1]
        with host.lock:
            entry = host.pending.pop(seq, None)
        if entry is None:  # pragma: no cover - defensive
            return
        plan = self.fault_plan
        if plan is not None and plan.has_io_actions:
            # Loop-dispatch trigger point: the Nth reply frame the event
            # loop handles for this host, in arrival order — which the
            # single loop serialises, so an io-triggered kill/stall/
            # disconnect lands at a reproducible point of the I/O schedule
            # regardless of how dispatch threads interleaved.
            io_kind = "site" if entry.kind == "site" else "task"
            self._apply_faults(
                host,
                plan.take(host.host_id, entry.round_index, io_kind,
                          plan.next_io_ordinal(host.host_id), "io"),
            )
        t_recv = entry.tracer.clock() if entry.tracer is not None else 0.0
        if entry.wire is not None:
            entry.wire.record(
                round_index=entry.round_index, host=host.host_id,
                direction="recv", kind=entry.kind + "_result",
                n_bytes=n_bytes, raw_bytes=raw_bytes, codec=codec,
            )
            if entry.tracer is not None:
                # Mirror of the wire record: the trace's byte counters
                # are bumped at exactly the ledger's recording points,
                # so their totals match the WireLedger bit for bit —
                # ``wire.bytes*`` against the raw column,
                # ``wire.bytes_encoded*`` against the physical one.
                entry.tracer.inc("wire.bytes", raw_bytes)
                entry.tracer.inc("wire.bytes.recv", raw_bytes)
                entry.tracer.inc(f"wire.bytes.{entry.kind}_result", raw_bytes)
                entry.tracer.inc("wire.bytes_encoded", n_bytes)
                entry.tracer.inc("wire.bytes_encoded.recv", n_bytes)
                entry.tracer.inc(f"wire.bytes_encoded.{entry.kind}_result", n_bytes)
                if entry.kind.startswith("replay"):
                    entry.tracer.inc("recovery.replay_bytes", n_bytes)
        if entry.tracer is not None:
            entry.tracer.add_span(
                "rpc", entry.t_send, t_recv, kind=entry.kind,
                host=host.host_id, round=entry.round_index,
                n_bytes=n_bytes, raw_bytes=raw_bytes,
            )
        if plan is not None and entry.fault_ordinal is not None:
            # After-trigger point: the frame's result has arrived.
            match_kind = "site" if entry.kind == "site" else "task"
            self._apply_faults(
                host,
                plan.take(host.host_id, entry.round_index, match_kind,
                          entry.fault_ordinal, "after"),
            )
        if tag == "exc":
            _, _, exc, tb = frame
            if exc is None:
                exc = RuntimeError(
                    f"cluster host {host.host_id} task failed with an "
                    f"unpicklable exception:\n{tb}"
                )
            self._clear_log_pending(entry)
            entry.future.set_exception(exc)
            return
        value = frame[2]
        if tag == "res" and entry.kind in ("task", "replay_task"):
            # Task results are content-addressed by the runner exactly
            # like dispatch payloads; resolve refs against this host's
            # mirror (storing fresh VALs) before the converter runs.
            try:
                counts: Dict[str, int] = {}
                value = host.payload_cache(entry.job).decode(value, counts=counts)
                if entry.tracer is not None:
                    if counts.get("hit"):
                        entry.tracer.inc("cluster.payload_hit", counts["hit"])
                    if counts.get("miss"):
                        entry.tracer.inc("cluster.payload_miss", counts["miss"])
            except BaseException as decode_exc:  # noqa: BLE001 - relayed
                entry.future.set_exception(decode_exc)
                return
        digest = None
        if entry.site_log is not None and isinstance(value, dict):
            # Commit the record's state digest to its site log before the
            # future resolves: replay verification reads it, and a waiter
            # observing the result must observe the checkpoint too.
            state = value.get("state")
            if is_state_digest(state):
                digest = (state[1], state[2])
        extras = frame[3] if len(frame) > 3 else None
        if extras:
            timer = extras.get("timer")
            if timer is not None:
                host.runner_timer.merge(timer)
            if entry.tracer is not None:
                buffer = extras.get("trace")
                if buffer is not None:
                    entry.tracer.absorb(
                        buffer,
                        window=(entry.t_send, t_recv),
                        tags={"round": entry.round_index, "host": host.host_id},
                    )
            log_buffer = extras.get("log")
            session = self._session_for(entry.job)
            if log_buffer is not None and session is not None:
                run_log = session.run_log
                if run_log is not None:
                    # Runner log records rebase into the same dispatch
                    # window their TraceBuffer does, so a record and the
                    # span it names land together on the timeline.
                    run_log.absorb(
                        log_buffer, window=(entry.t_send, t_recv),
                        round=entry.round_index, host=host.host_id,
                    )
        try:
            if entry.convert is not None:
                value = entry.convert(value)
        except BaseException as convert_exc:  # noqa: BLE001 - relayed
            self._clear_log_pending(entry)
            entry.future.set_exception(convert_exc)
            return
        if entry.site_log is not None:
            if digest is not None:
                entry.site_log.note_result(entry.record_index, digest[0], digest[1])
            else:  # pragma: no cover - keyed dispatches always digest
                self._clear_log_pending(entry)
        entry.future.set_result(value)

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------

    def _submit_frame(
        self,
        host: _Host,
        build_frame: Callable[[int], Tuple],
        *,
        wire: Optional[WireLedger],
        round_index: int,
        kind: str,
        convert: Optional[Callable[[Any], Any]],
        tracer=None,
        job: str = "",
        entry_extra: Optional[Dict[str, Any]] = None,
        on_dead: str = "fail",
    ) -> Future:
        """Encode, register and enqueue one frame; returns its future.

        ``entry_extra`` lands on the pending entry's recovery slots (site
        log + record, re-dispatchable task, re-issuable pull).  ``on_dead``
        chooses what a registration racing the host's death does: ``"fail"``
        (default) resolves the future with the death, ``"raise"`` throws
        :class:`_HostDied` so the caller can re-target and replay.
        """
        future: Future = Future()
        fault_ordinal: Optional[int] = None
        plan = self.fault_plan
        if plan is not None and kind in ("site", "task"):
            # Before-trigger point: counted and applied before any byte of
            # the frame exists, so a "kill ... when=before" death is observed
            # by dispatch or by the reader — genuinely mid-round.
            fault_ordinal = plan.next_ordinal(host.host_id, round_index)
            self._apply_faults(
                host, plan.take(host.host_id, round_index, kind, fault_ordinal, "before")
            )
        with self._submit_lock:
            self._seq += 1
            seq = self._seq
        # Serialize on the submitting thread: an unpicklable dispatch fails
        # just this task (the stream never sees a byte of it), and the wire
        # ledger is complete the moment the future resolves — the event
        # loop only ever flushes already-accounted bytes.  The host's
        # encode lock serialises encode+enqueue as one step: frame builders
        # may register payload digests in the host's cache, and a REF must
        # never be enqueued ahead of the VAL that defined it.
        codec = self.wire_policy.codec_for(kind)
        with host.encode_lock:
            try:
                frame = encode_frame(build_frame(seq), codec)
            except Exception as exc:  # noqa: BLE001 - relayed via the future
                future.set_exception(
                    RuntimeError(
                        f"task dispatch to cluster host {host.host_id} could not "
                        f"be serialized: {exc!r}"
                    )
                )
                return future
            # Register under the host lock with a dead-recheck: _mark_dead
            # sets ``dead`` before draining ``pending``, so either this entry
            # lands in the drain or the death is observed here — never an
            # unresolved future.
            entry = _Pending(future, wire, round_index, kind, convert, job)
            entry.fault_ordinal = fault_ordinal
            if entry_extra:
                for slot, value in entry_extra.items():
                    setattr(entry, slot, value)
            if tracer is not None and tracer.enabled:
                entry.tracer = tracer
                entry.t_send = tracer.clock()
            died = False
            with host.lock:
                if host.dead is not None:
                    if on_dead == "raise":
                        raise _HostDied(host.dead)
                    if (entry.task_fn is not None and self.retry.enabled
                            and self._exhausted is None):
                        # The reader observed the death before this entry was
                        # registered, so _recover_host never saw it.  The
                        # frame never touched the wire; adopt it into the
                        # death's recovery outside the locks.
                        died = True
                    else:
                        future.set_exception(
                            DeadHostError(
                                self._exhausted or host.dead,
                                host_id=host.host_id,
                                round_index=round_index,
                                epoch=self._log_epoch_for(entry),
                            )
                        )
                        return future
                else:
                    if not host.pending:
                        # Idle -> busy: the silence window the heartbeat
                        # monitor measures starts now, not at the last old
                        # frame.
                        host.last_seen = time.monotonic()
                    host.pending[seq] = entry
                    if entry.site_log is not None:
                        # Atomic with registration: either _mark_dead's drain
                        # sees this entry (and replay resolves it via the
                        # log), or the death was observed above — never an
                        # orphaned record.
                        entry.site_log.pending = (entry.record_index, entry)
                        entry.site_log.location = host.host_id
            if not died and wire is not None:
                # Captured as one tuple so the event loop accounting a
                # heartbeat sees a *consistent* (ledger, tracer) pair — the
                # pair this run's frames use — never a ledger from one run
                # and a tracer from another.
                host.hb_account = (wire, entry.tracer, round_index, job)
                wire.record(
                    round_index=round_index, host=host.host_id,
                    direction="send", kind=kind + "_dispatch",
                    n_bytes=frame.n_bytes, raw_bytes=frame.raw_bytes,
                    codec=frame.codec,
                )
                if entry.tracer is not None:
                    # Mirror of the wire record (see _handle_frame): counters
                    # bump at the ledger's exact recording points — raw into
                    # ``wire.bytes*``, physical into ``wire.bytes_encoded*``.
                    entry.tracer.inc("wire.bytes", frame.raw_bytes)
                    entry.tracer.inc("wire.bytes.send", frame.raw_bytes)
                    entry.tracer.inc(f"wire.bytes.{kind}_dispatch", frame.raw_bytes)
                    entry.tracer.inc("wire.bytes_encoded", frame.n_bytes)
                    entry.tracer.inc("wire.bytes_encoded.send", frame.n_bytes)
                    entry.tracer.inc(f"wire.bytes_encoded.{kind}_dispatch", frame.n_bytes)
                    if kind.startswith("replay"):
                        entry.tracer.inc("recovery.replay_bytes", frame.n_bytes)
            if not died:
                # Queue the encoded bytes on the channel (still under the
                # encode lock, so byte order matches cache order) and ask
                # the event loop to flush them; backpressure lives in the
                # channel's own send buffer, not a thread-fed queue.
                host.channel.queue_frame(frame)
                loop = self._loop
                if loop is not None:
                    loop.notify_write(host.channel)
        if died:
            # Outside the dead host's encode lock: the re-dispatch encodes
            # against the survivor's cache under that host's own lock.
            self._adopt_raced_task(host, entry)
        return future

    def submit_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        wire: Optional[WireLedger] = None,
        round_index: int = 0,
        tracer=None,
        job: str = "",
    ) -> List[Future]:
        """Ship structure-free tasks to the runners, one future per payload.

        Payload ``i`` runs on host ``i % n_hosts`` — deterministic placement,
        so repeated runs exchange identical frame sequences.  Each payload is
        content-addressed against its host's
        :class:`~repro.cluster.payloads.PayloadCache` mirror at dispatch
        time: components the runner already holds collapse to their digests
        (``cluster.payload_hit``), fresh ones ship once and register on both
        ends.  A ``tracer`` (traced runs only) records wire spans and byte
        counters, and asks the runner — via a fifth frame slot the untraced
        dispatch never carries — to trace the task body.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        traced = tracer is not None and tracer.enabled
        hosts = self._ensure_started()

        def build_task(seq: int, host: _Host, payload: Any) -> Tuple:
            # Runs under the host's encode lock (see _submit_frame), so the
            # digests this encode registers are enqueued in cache order.
            counts: Dict[str, int] = {}
            encoded = host.payload_cache(job).encode(payload, counts=counts)
            if traced:
                if counts.get("hit"):
                    tracer.inc("cluster.payload_hit", counts["hit"])
                if counts.get("miss"):
                    tracer.inc("cluster.payload_miss", counts["miss"])
            # A job namespace rides as a sixth slot (with the trace flag
            # pinned into the fifth) so the runner serves the matching
            # per-job cache; default-namespace frames keep their historical
            # shapes byte for byte.
            if job:
                return ("task", seq, fn, encoded, traced, job)
            if traced:
                return ("task", seq, fn, encoded, True)
            return ("task", seq, fn, encoded)

        recovery = self.retry.enabled
        futures = []
        for index, payload in enumerate(payloads):
            # Recovery keeps the same deterministic default placement but
            # routes around hosts that already died; it also remembers the
            # (fn, payload, index) so an in-flight loss re-dispatches.
            host = self._repin_target_index(index) if recovery else hosts[index % len(hosts)]
            kind = "task"
            if recovery:
                default = hosts[index % len(hosts)]
                if default.dead is not None:
                    # Routed around a dead host: account the frame as a
                    # replay (it exists on this host *because of* the death)
                    # and make sure the death itself is on the ledger — the
                    # recovery thread may have closed empty-handed if the
                    # host died with nothing in flight.
                    kind = "replay_task"
                    self._note_death_observed(default, wire, tracer, round_index)
                    if traced:
                        tracer.inc("recovery.replayed_frames")
            extra = (
                {"task_fn": fn, "task_payload": payload, "task_index": index}
                if recovery else None
            )
            futures.append(
                self._submit_frame(
                    host,
                    lambda seq, host=host, payload=payload: build_task(seq, host, payload),
                    wire=wire, round_index=round_index, kind=kind, convert=None,
                    tracer=tracer, job=job, entry_extra=extra,
                )
            )
        return futures

    def submit_site_pairs(
        self,
        pairs: Sequence[Tuple[Any, Any]],
        *,
        wire: Optional[WireLedger] = None,
        round_index: int = 0,
        tracer=None,
        job: str = "",
    ) -> List[Future]:
        """Ship ``(SiteTask, SiteContext)`` pairs, returning SiteTaskResult futures.

        Site ``s`` is pinned to host ``s % n_hosts``, and its
        ``(shard, local_metric)`` sticky half is shipped only the first time
        the host sees the context's ``resident_key`` — later rounds reuse the
        runner-resident copy.  Mutable state gets the same residency: when
        ``ctx.state`` is the :class:`~repro.runtime.state.RemoteStateProxy`
        this backend produced for the same key, the dispatch carries only an
        epoch token plus the coordinator's write overlay; otherwise (first
        round, residency cleared, foreign proxy) the full dict is shipped
        and the runner adopts it.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        traced = tracer is not None and tracer.enabled
        hosts = self._ensure_started()
        recovery = self.retry.enabled
        futures = []
        for task, ctx in pairs:
            key = getattr(ctx, "resident_key", None)
            if recovery and key is not None:
                futures.append(
                    self._submit_site_recoverable(
                        task, ctx, key, wire, round_index, tracer, traced, job
                    )
                )
                continue
            host = hosts[ctx.site_id % len(hosts)]
            evict: List[Any] = []
            if key is not None and key in host.resident_keys:
                if traced:
                    tracer.inc("cluster.resident_hit")
                sticky = None
            else:
                if traced and key is not None:
                    tracer.inc("cluster.resident_miss")
                sticky = (ctx.shard, ctx.local_metric)
                if key is not None:
                    # A fresh key for an already-seen site slot means a new
                    # protocol run took it over: the superseded entry is
                    # evicted remotely, so a shared warm pool never grows
                    # its runner memory with dead runs' metrics.  Slots are
                    # per job namespace, so concurrent jobs with identical
                    # site ids never evict each other.
                    stale = host.resident_by_site.get((job, ctx.site_id))
                    if stale is not None and stale != key:
                        # Materialise the old run's proxy (if it is still
                        # alive) before its runner-side copy disappears.
                        self._detach_resident_key(stale)
                        evict.append(stale)
                        host.resident_keys.discard(stale)
                    host.resident_keys.add(key)
                    host.resident_by_site[(job, ctx.site_id)] = key
            state = self._encode_dispatch_state(ctx.state, key)
            if traced:
                tracer.inc(
                    "cluster.state_token" if is_state_token(state) else "cluster.state_ship"
                )
            dyn = {
                "site_id": ctx.site_id,
                "fn": task.fn,
                "args": task.args,
                "kwargs": task.kwargs,
                "state": state,
                "rng": ctx.rng,
                "inbox": ctx.inbox,
            }
            if traced:
                # Only traced dispatches carry the extra key, so untraced
                # frames stay byte-identical to an untraced build.
                dyn["trace"] = True
            if job:
                # The namespace rides inside dyn (service-admitted jobs
                # only), telling the runner which per-job payload cache the
                # frame's eviction clears; default-namespace frames keep
                # their historical bytes.
                dyn["ns"] = job
            convert = self._site_result_converter(
                host, key, ctx.site_id, wire, round_index, tracer, job
            )

            def build_site(seq, host=host, key=key, sticky=sticky, dyn=dyn, evict=evict):
                if evict:
                    # Slot eviction ends payload residency with it: clearing
                    # the mirror here — under the encode lock, at the same
                    # frame that tells the runner to evict — keeps both
                    # ends' caches symmetric in frame order.
                    host.payload_cache(job).clear()
                return ("site", seq, key, sticky, dyn, evict)

            futures.append(
                self._submit_frame(
                    host, build_site,
                    wire=wire, round_index=round_index, kind="site",
                    convert=convert, tracer=tracer, job=job,
                )
            )
        return futures

    def _submit_site_recoverable(
        self, task, ctx, key, wire, round_index, tracer, traced, job: str = ""
    ) -> Future:
        """The recovery-enabled twin of the ``submit_site_pairs`` loop body.

        Identical placement, residency and state handling, plus the
        checkpoint: every dispatch appends a
        :class:`~repro.cluster.recovery.SiteDispatchRecord` to the key's
        :class:`~repro.cluster.recovery.SiteLog` *before* the frame is built,
        and a dead location is replayed onto the deterministic re-pin target
        under the log lock before anything new is dispatched there.
        """
        with self._logs_lock:
            log = self._site_logs.get(key)
            if log is None:
                log = SiteLog(key, ctx.site_id, (ctx.shard, ctx.local_metric), job)
                self._site_logs[key] = log
        with log.lock:
            target = self._ensure_located_locked(log)
            if target is None:
                target = self._repin_target(ctx.site_id)
            default = self._host_by_id(ctx.site_id % self.n_hosts)
            if default is not None and default.dead is not None:
                # Placement routed around (or replayed off) a dead host:
                # make sure the death is on the ledger even if its recovery
                # thread closed with nothing in flight to evidence it.
                self._note_death_observed(default, wire, tracer, round_index)
            evict: List[Any] = []
            if key in target.resident_keys:
                if traced:
                    tracer.inc("cluster.resident_hit")
                sticky = None
            else:
                if traced:
                    tracer.inc("cluster.resident_miss")
                sticky = (ctx.shard, ctx.local_metric)
                stale = target.resident_by_site.get((job, ctx.site_id))
                if stale is not None and stale != key:
                    self._detach_resident_key(stale)
                    evict.append(stale)
                    target.resident_keys.discard(stale)
                    with self._logs_lock:
                        self._site_logs.pop(stale, None)
                target.resident_keys.add(key)
                target.resident_by_site[(job, ctx.site_id)] = key
            state = self._encode_dispatch_state(ctx.state, key)
            if traced:
                tracer.inc(
                    "cluster.state_token" if is_state_token(state) else "cluster.state_ship"
                )
            record = SiteDispatchRecord(
                round_index, ctx.site_id, task.fn, task.args, task.kwargs,
                encode_payload(ctx.rng), ctx.inbox, state, traced, wire, tracer,
            )
            index = log.append(record)
            dyn = {
                "site_id": ctx.site_id,
                "fn": task.fn,
                "args": task.args,
                "kwargs": task.kwargs,
                "state": state,
                "rng": ctx.rng,
                "inbox": ctx.inbox,
            }
            if traced:
                dyn["trace"] = True
            if job:
                dyn["ns"] = job

            def build_site(seq, target=target, key=key, sticky=sticky,
                           dyn=dyn, evict=evict):
                if evict:
                    target.payload_cache(job).clear()
                return ("site", seq, key, sticky, dyn, evict)

            convert = self._site_result_converter(
                target, key, ctx.site_id, wire, round_index, tracer, job
            )
            try:
                return self._submit_frame(
                    target, build_site,
                    wire=wire, round_index=round_index, kind="site",
                    convert=convert, tracer=tracer, job=job, on_dead="raise",
                    entry_extra={"site_log": log, "record_index": index},
                )
            except _HostDied:
                # The target died between placement and registration.  The
                # record is already in the log; replaying it (from record 0,
                # on a fresh re-pin target) both rebuilds the resident state
                # and produces this dispatch's result.
                adopted: Future = Future()
                self._replay_log_locked(log, self._repin_target(ctx.site_id), adopted)
                return adopted

    # ------------------------------------------------------------------
    # Resident mutable state
    # ------------------------------------------------------------------

    def _encode_dispatch_state(self, state: Any, key: Any) -> Any:
        """What the dispatch frame carries in its state slot.

        An attached current-epoch proxy of this backend collapses to its
        epoch token (plus the coordinator-side write overlay); anything else
        — a plain dict, a detached proxy, a proxy of another backend —
        materialises into a full dict the runner adopts.
        """
        if (
            isinstance(state, RemoteStateProxy)
            and not state.detached
            and state.owner() is self
            and state.resident_key == key
        ):
            with self._state_lock:
                ref = self._live_state.get(key)
            if ref is not None and ref() is state:
                return state.dispatch_token()
        return materialize_state(state)

    def _site_result_converter(
        self,
        host: _Host,
        key: Any,
        site_id: int,
        wire: Optional[WireLedger],
        round_index: int,
        tracer=None,
        job: str = "",
    ) -> Callable[[dict], Any]:
        """Build the wire->SiteTaskResult decoder for one dispatched site task.

        Runs on the reader thread when the result frame arrives; a state
        digest in the frame becomes a :class:`RemoteStateProxy` registered
        as the key's current-epoch view.
        """
        from repro.runtime.tasks import Outgoing, SiteTaskResult

        def convert(result: dict):
            outbox = [
                Outgoing(
                    kind=kind, payload=decode_payload(blob), words=words,
                    n_bytes=n_bytes, n_bytes_encoded=n_encoded,
                )
                for kind, blob, words, n_bytes, n_encoded in result["outbox"]
            ]
            state = result["state"]
            if is_state_digest(state) and key is not None:
                _, epoch, sizes = state
                proxy = RemoteStateProxy(
                    resident_key=key,
                    site_id=site_id,
                    epoch=epoch,
                    sizes=sizes,
                    fetch=lambda keys: self._pull_state_entries(
                        host, key, epoch, keys, wire, round_index, tracer, job
                    ),
                    owner=self,
                )
                with self._state_lock:
                    self._live_state[key] = weakref.ref(proxy)
                state = proxy
            return SiteTaskResult(
                site_id=result["site_id"],
                value=result["value"],
                state=state,
                timer=result["timer"],
                rng=result["rng"],
                outbox=outbox,
            )

        return convert

    def _pull_state_entries(
        self,
        host: _Host,
        key: Any,
        epoch: int,
        keys: Sequence[str],
        wire: Optional[WireLedger],
        round_index: int,
        tracer=None,
        job: str = "",
    ) -> Dict[str, Any]:
        """Fault resident-state entries from a runner (a proxy read missed).

        The pull frames land in the same wire ledger as the round that
        produced the digest, so the ledger stays an honest account of every
        byte the protocol's state handling moved.

        When the owning host has died, a recovery-enabled backend redirects
        the fault to the replayed copy of the state (replaying the site's
        dispatch log first if recovery has not reached it yet); a fail-fast
        backend raises :class:`DeadHostError` naming the host, the epoch and
        the entries that just became unreachable.
        """
        hosts = self._hosts
        if hosts is None or host not in hosts:
            raise RuntimeError(
                f"cannot fault state entries {list(keys)!r} for {key!r}: the "
                "cluster backend holding them was closed (pull_state() first)"
            )
        keys = list(keys)
        recovery = self.retry.enabled
        if host.dead is not None:
            if recovery:
                return self._pull_redirected(
                    host, key, keys, wire, round_index, tracer, job
                )
            raise DeadHostError(
                f"state entries {keys!r} of {key!r} at epoch {epoch} are "
                f"unreachable: {host.dead}",
                host_id=host.host_id, round_index=round_index, epoch=epoch,
            )
        if tracer is not None and tracer.enabled:
            tracer.inc("cluster.state_pulls")
            tracer.event(
                "state_pull", host=host.host_id, round=round_index,
                epoch=epoch, keys=len(keys),
            )
        try:
            future = self._submit_frame(
                host,
                lambda seq: ("pull_state", seq, key, epoch, keys),
                wire=wire, round_index=round_index, kind="state_pull", convert=None,
                tracer=tracer, job=job,
                on_dead="raise" if recovery else "fail",
                entry_extra={"pull_info": (key, keys)} if recovery else None,
            )
        except _HostDied:
            # The host died between the liveness check and registration.
            return self._pull_redirected(
                host, key, keys, wire, round_index, tracer, job
            )
        return future.result()

    def _pull_redirected(
        self,
        dead_host: _Host,
        key: Any,
        keys: List[str],
        wire: Optional[WireLedger],
        round_index: int,
        tracer=None,
        job: str = "",
    ) -> Dict[str, Any]:
        """Fault state entries from the replayed copy after the owner died.

        The site's dispatch log tells recovery where the state lives now (or
        gets replayed onto the deterministic re-pin target right here, under
        the log lock, if recovery has not reached this site yet).  The pull
        is charged to the wire as a ``replay_pull`` frame — recovery bytes,
        accounted like every other byte.
        """
        with self._logs_lock:
            log = self._site_logs.get(key)
        if log is None:
            raise DeadHostError(
                f"state entries {keys!r} of {key!r} are unreachable and there "
                f"is no dispatch log to replay: {dead_host.dead}",
                host_id=dead_host.host_id, round_index=round_index,
            )
        with log.lock:
            target = self._ensure_located_locked(log)
            epoch = log.epoch
        if target is None:
            raise DeadHostError(
                f"state entries {keys!r} of {key!r} are unreachable and its "
                f"dispatch log is empty: {dead_host.dead}",
                host_id=dead_host.host_id, round_index=round_index,
            )
        if tracer is not None and tracer.enabled:
            tracer.inc("cluster.state_pulls")
            tracer.event(
                "state_pull", host=target.host_id, round=round_index,
                epoch=epoch, keys=len(keys),
            )
        future = self._submit_frame(
            target,
            lambda seq: ("pull_state", seq, key, epoch, keys),
            wire=wire, round_index=round_index, kind="replay_pull", convert=None,
            tracer=tracer, job=job, entry_extra={"pull_info": (key, keys)},
        )
        return future.result()

    def _detach_resident_key(self, key: Any) -> None:
        """Forget a key's proxy registration, materialising it if still alive.

        Called right before the runner-side copy goes away (slot eviction,
        :meth:`clear_resident`): a live proxy pulls its remaining entries so
        nothing the coordinator could still read is lost; a dead proxy means
        nobody can read the state anymore and nothing needs shipping.
        """
        with self._state_lock:
            ref = self._live_state.pop(key, None)
        proxy = ref() if ref is not None else None
        if proxy is not None and not proxy.detached:
            proxy.pull_state()

    def runner_timers(self) -> Dict[int, Timer]:
        """Per-host runner overhead totals merged from result-frame extras.

        Every result frame carries the runner's own ``cluster:*`` timer for
        that frame (task execution, outbox/digest encoding); the reader
        threads fold them into one accumulating :class:`Timer` per host.
        The returned timers are snapshots — safe to read after
        :meth:`close`, empty when the pool never started.
        """
        if self._hosts is None:
            return {}
        out: Dict[int, Timer] = {}
        for host in self._hosts:
            snapshot = Timer()
            snapshot.merge(host.runner_timer)
            out[host.host_id] = snapshot
        return out

    def submit_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Future]:
        return self.submit_tasks(fn, list(items))

    def map_ordered(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [future.result() for future in self.submit_ordered(fn, items)]

    def clear_resident(self) -> None:
        """Drop all runner-resident site state (frees memory on shared pools).

        Everything resident goes: the sticky ``(shard, local_metric)``
        copies, the mutable per-site state *and* the content-addressed
        payload caches on both ends.  Live state proxies are materialised
        first — their remaining entries are pulled to the coordinator — so a
        mid-run clear loses nothing: the next dispatch simply re-ships the
        full context (sticky half, state dict, payload bytes) and results
        stay bit-identical.
        """
        if self._hosts is None:
            return
        with self._state_lock:
            keys = list(self._live_state)
        for key in keys:
            self._detach_resident_key(key)
        with self._logs_lock:
            # Dispatch logs checkpoint *resident* state; once nothing is
            # resident there is nothing left to replay.
            self._site_logs.clear()

        def build_clear(seq: int, host: _Host) -> Tuple:
            # Clearing the mirror under the encode lock, at the exact frame
            # that clears the runner, keeps cache membership symmetric:
            # frames encoded after this one re-ship their payload bytes.
            host.payloads.clear()
            return ("clear_resident", seq)

        futures = []
        for host in self._hosts:
            if host.dead is not None:
                continue
            host.resident_keys.clear()
            host.resident_by_site.clear()
            futures.append(
                self._submit_frame(
                    host, lambda seq, host=host: build_clear(seq, host),
                    wire=None, round_index=0, kind="task", convert=None,
                )
            )
        for future in futures:
            future.result()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stopped" if self._hosts is None else "running"
        return f"ClusterBackend(n_hosts={self.n_hosts}, {state})"


__all__ = ["ClusterBackend"]
