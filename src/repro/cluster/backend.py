"""The distributed-memory cluster backend.

:class:`ClusterBackend` implements the :class:`~repro.runtime.backends.ExecutionBackend`
interface by spawning one long-lived runner process per simulated host and
shipping every task over a length-prefixed unix-domain socket
(:mod:`repro.cluster.framing`).  Compared to the process pool it makes three
claims honest:

* **Distributed memory.**  Runners start as fresh interpreters
  (``python -m repro.cluster.runner``) and inherit nothing; every byte a
  site computes on arrived through its socket.
* **Wire-level byte accounting.**  Each dispatch and result frame's exact
  size is recorded in the :class:`~repro.cluster.wire.WireLedger` the caller
  supplies — the physically transmitted (codec-encoded) bytes *and* the
  bytes the frame would have cost uncompressed — and site results encode
  each buffered site-to-coordinator payload individually so the
  communication ledger can stamp per-message ``n_bytes`` (plus its
  codec-priced ``n_bytes_encoded``) next to the semantic word counts.
* **Codec frames + content-addressed payloads.**  Frames are encoded under
  a :class:`~repro.cluster.framing.WirePolicy` (site/task traffic
  compressed, latency-sensitive state pulls and control frames not; the
  ``REPRO_WIRE_CODEC`` environment override reaches the runners through
  their inherited environment), and every structure-free task payload and
  result is content-addressed against a per-host
  :class:`~repro.cluster.payloads.PayloadCache` mirrored on the runner —
  repeated payload content (center_g's collapse matrices and
  round-tripped state dicts) crosses the wire once per pool lifetime and
  costs a 16-byte digest afterwards.
* **Resident site state.**  A site's heavy immutable half — its shard and
  local metric — is shipped once per protocol run and kept resident on its
  runner (sites are pinned to hosts by ``site_id % n_hosts``).  The
  *mutable* half gets the same treatment: after a site task completes, its
  ``ctx.state`` stays on the runner and only a digest (keys, per-entry
  pickled sizes, a state epoch) crosses back; the next dispatch ships an
  epoch token instead of the dict, and the coordinator's ``Site.state``
  becomes a :class:`~repro.runtime.state.RemoteStateProxy` that faults
  individual entries over the wire only on explicit access.  Later rounds
  therefore pay wire cost only for what actually changed.

Tasks return futures (:meth:`submit_tasks` / :meth:`submit_site_pairs`), the
substrate of async round scheduling: the coordinator consumes completed
results in submission order while other hosts are still computing.  A runner
that dies mid-round fails all of its in-flight futures with a
:class:`RuntimeError` naming the host; sockets and the scratch directory are
cleaned up by :meth:`close` even then.
"""

from __future__ import annotations

import os
import queue
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import weakref
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.framing import FrameChannel, WirePolicy, decode_payload, encode_frame
from repro.cluster.payloads import PayloadCache
from repro.cluster.wire import WireLedger
from repro.runtime.backends import ExecutionBackend, default_worker_count
from repro.runtime.state import (
    RemoteStateProxy,
    is_state_digest,
    is_state_token,
    materialize_state,
)
from repro.utils.timing import Timer


class _Pending:
    """Book-keeping for one in-flight frame awaiting its response."""

    __slots__ = ("future", "wire", "round_index", "kind", "convert", "tracer", "t_send")

    def __init__(self, future, wire, round_index, kind, convert):
        self.future = future
        self.wire = wire
        self.round_index = round_index
        self.kind = kind
        self.convert = convert
        #: Set only on traced runs: the run tracer plus the dispatch instant
        #: (tracer clock), bracketing the frame's wire span on receipt.
        self.tracer = None
        self.t_send = 0.0


class _Host:
    """One runner process plus its socket, reader/sender threads and pending map."""

    def __init__(self, host_id: int):
        self.host_id = host_id
        self.process: Optional[subprocess.Popen] = None
        self.channel: Optional[FrameChannel] = None
        self.reader: Optional[threading.Thread] = None
        self.sender: Optional[threading.Thread] = None
        self.send_queue: "queue.Queue[Optional[tuple]]" = queue.Queue()
        self.pending: Dict[int, _Pending] = {}
        self.lock = threading.Lock()
        self.dead: Optional[str] = None
        #: Accumulated runner-side frame overhead (``cluster:*`` labels from
        #: result-frame extras).  Touched only by this host's reader thread.
        self.runner_timer = Timer()
        self.resident_keys: Set[Any] = set()
        #: site_id -> resident key currently cached on the runner for that
        #: slot; a new key for the same slot evicts the old one remotely, so
        #: runner memory is bounded by live site slots, not runs served.
        self.resident_by_site: Dict[int, Any] = {}
        #: Coordinator-side mirror of the runner's content-addressed payload
        #: cache.  Membership stays symmetric because both ends apply the
        #: same store-on-VAL rule at each frame, in FIFO frame order.
        self.payloads = PayloadCache()
        #: Serialises frame encode + enqueue: a frame encoded *after* another
        #: must also be enqueued after it, or a payload REF could cross the
        #: socket before the VAL that defined it.
        self.encode_lock = threading.Lock()


class ClusterBackend(ExecutionBackend):
    """Run site tasks on one long-lived runner process per simulated host."""

    name = "cluster"

    def __init__(self, n_hosts: Optional[int] = None, *, start_timeout: float = 60.0):
        if n_hosts is not None and n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {n_hosts}")
        self.n_hosts = n_hosts or default_worker_count()
        self.start_timeout = float(start_timeout)
        #: Per-frame-kind codec choices; runners resolve the same policy from
        #: the environment they inherit, so both directions agree.
        self.wire_policy = WirePolicy.from_env()
        self._hosts: Optional[List[_Host]] = None
        self._socket_dir: Optional[str] = None
        self._seq = 0
        self._submit_lock = threading.Lock()
        #: resident_key -> weakref of the *current-epoch* proxy for that
        #: key's mutable state; used to materialise proxies before their
        #: runner-side copy is evicted or cleared.
        self._live_state: Dict[Any, "weakref.ref[RemoteStateProxy]"] = {}
        self._state_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def socket_dir(self) -> Optional[str]:
        """Scratch directory holding the per-host sockets (None when stopped)."""
        return self._socket_dir

    @staticmethod
    def _runner_environment() -> Dict[str, str]:
        """Child environment: mirror the coordinator's import path.

        Task functions cross the wire as qualified names, so the runner must
        be able to import every module the coordinator can (``repro`` itself,
        but also e.g. a caller's own task modules).  The coordinator's full
        ``sys.path`` becomes the runner's ``PYTHONPATH``; the empty entry
        (script-directory convention) is pinned to the current directory.
        """
        entries = []
        for entry in sys.path:
            entries.append(entry if entry else os.getcwd())
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(entries))
        return env

    def _ensure_started(self) -> List[_Host]:
        if self._hosts is not None:
            return self._hosts
        socket_dir = tempfile.mkdtemp(prefix="repro-cluster-")
        env = self._runner_environment()
        hosts: List[_Host] = []
        try:
            for host_id in range(self.n_hosts):
                host = _Host(host_id)
                path = os.path.join(socket_dir, f"h{host_id}.sock")
                listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    listener.bind(path)
                    listener.listen(1)
                    listener.settimeout(self.start_timeout)
                    # A fresh interpreter per host (not a fork): the runner
                    # inherits no address space, so everything it computes on
                    # demonstrably arrived through its socket.
                    host.process = subprocess.Popen(
                        [sys.executable, "-m", "repro.cluster.runner", path, str(host_id)],
                        env=env,
                    )
                    try:
                        conn, _ = listener.accept()
                    except socket.timeout:
                        exitcode = host.process.poll()
                        raise RuntimeError(
                            f"cluster host {host_id} failed to connect within "
                            f"{self.start_timeout}s (exit code {exitcode})"
                        ) from None
                finally:
                    listener.close()
                host.channel = FrameChannel(conn)
                hello, _, _, _ = host.channel.recv()
                if hello != ("hello", host_id):
                    raise RuntimeError(
                        f"cluster host {host_id} sent a bad handshake: {hello!r}"
                    )
                host.reader = threading.Thread(
                    target=self._read_loop, args=(host,),
                    name=f"repro-cluster-reader-{host_id}", daemon=True,
                )
                host.reader.start()
                host.sender = threading.Thread(
                    target=self._send_loop, args=(host,),
                    name=f"repro-cluster-sender-{host_id}", daemon=True,
                )
                host.sender.start()
                hosts.append(host)
        except BaseException:
            self._hosts = hosts  # let close() reap whatever did start
            self._socket_dir = socket_dir
            self.close()
            raise
        self._hosts = hosts
        self._socket_dir = socket_dir
        return hosts

    def close(self) -> None:
        """Shut runners down and remove sockets/scratch dir.  Idempotent."""
        hosts, self._hosts = self._hosts, None
        socket_dir, self._socket_dir = self._socket_dir, None
        with self._state_lock:
            # Runner-resident state dies with the runners; attached proxies
            # raise a "backend is closed" error on their next fault instead
            # of silently re-spawning a pool that never held their state.
            self._live_state.clear()
        if hosts is not None:
            for host in hosts:
                host.send_queue.put(None)  # stop the sender loop
            for host in hosts:
                if host.sender is not None:
                    host.sender.join(timeout=5.0)
                sender_stopped = host.sender is None or not host.sender.is_alive()
                if host.channel is not None and host.dead is None and sender_stopped:
                    # Safe to write directly: the sender loop has exited, so
                    # the frame cannot interleave with an in-flight dispatch.
                    try:
                        host.channel.send(("shutdown",))
                    except OSError:
                        pass
            for host in hosts:
                if host.channel is not None:
                    host.channel.close()
                if host.reader is not None:
                    host.reader.join(timeout=5.0)
                if host.process is not None:
                    try:
                        host.process.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:  # pragma: no cover - stuck runner
                        host.process.terminate()
                        try:
                            host.process.wait(timeout=5.0)
                        except subprocess.TimeoutExpired:
                            host.process.kill()
                            host.process.wait()
                self._fail_pending(
                    host, f"cluster host {host.host_id} was shut down with tasks in flight"
                )
        if socket_dir is not None:
            shutil.rmtree(socket_dir, ignore_errors=True)

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def _fail_pending(self, host: _Host, reason: str) -> None:
        with host.lock:
            pending = sorted(host.pending.items())
            host.pending.clear()
        for _, entry in pending:
            if not entry.future.done():
                entry.future.set_exception(RuntimeError(reason))

    def _mark_dead(self, host: _Host, detail: str) -> None:
        exitcode = None
        if host.process is not None:
            try:
                exitcode = host.process.wait(timeout=1.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - still dying
                exitcode = host.process.poll()
        reason = (
            f"cluster host {host.host_id} died mid-round ({detail}; "
            f"runner exit code {exitcode}); its in-flight site tasks are lost"
        )
        host.dead = reason
        self._fail_pending(host, reason)

    def _read_loop(self, host: _Host) -> None:
        while True:
            try:
                frame, n_bytes, raw_bytes, codec = host.channel.recv()
            except ConnectionError as exc:
                if host.dead is None and self._hosts is not None:
                    self._mark_dead(host, str(exc))
                return
            except Exception as exc:  # noqa: BLE001 - e.g. an undecodable frame
                # A frame that cannot be decoded (unknown class, corrupt
                # stream, MemoryError on a huge payload) must not kill the
                # reader silently: that would leave every in-flight future
                # unresolved and the caller blocked forever.
                if host.dead is None and self._hosts is not None:
                    self._mark_dead(host, f"result frame could not be decoded: {exc!r}")
                return
            tag = frame[0]
            if tag == "bye":
                return
            if tag == "fatal":
                self._mark_dead(host, frame[1])
                return
            seq = frame[1]
            with host.lock:
                entry = host.pending.pop(seq, None)
            if entry is None:  # pragma: no cover - defensive
                continue
            t_recv = entry.tracer.clock() if entry.tracer is not None else 0.0
            if entry.wire is not None:
                entry.wire.record(
                    round_index=entry.round_index, host=host.host_id,
                    direction="recv", kind=entry.kind + "_result",
                    n_bytes=n_bytes, raw_bytes=raw_bytes, codec=codec,
                )
                if entry.tracer is not None:
                    # Mirror of the wire record: the trace's byte counters
                    # are bumped at exactly the ledger's recording points,
                    # so their totals match the WireLedger bit for bit —
                    # ``wire.bytes*`` against the raw column,
                    # ``wire.bytes_encoded*`` against the physical one.
                    entry.tracer.inc("wire.bytes", raw_bytes)
                    entry.tracer.inc("wire.bytes.recv", raw_bytes)
                    entry.tracer.inc(f"wire.bytes.{entry.kind}_result", raw_bytes)
                    entry.tracer.inc("wire.bytes_encoded", n_bytes)
                    entry.tracer.inc("wire.bytes_encoded.recv", n_bytes)
                    entry.tracer.inc(f"wire.bytes_encoded.{entry.kind}_result", n_bytes)
            if entry.tracer is not None:
                entry.tracer.add_span(
                    "rpc", entry.t_send, t_recv, kind=entry.kind,
                    host=host.host_id, round=entry.round_index,
                    n_bytes=n_bytes, raw_bytes=raw_bytes,
                )
            if tag == "exc":
                _, _, exc, tb = frame
                if exc is None:
                    exc = RuntimeError(
                        f"cluster host {host.host_id} task failed with an "
                        f"unpicklable exception:\n{tb}"
                    )
                entry.future.set_exception(exc)
                continue
            value = frame[2]
            if tag == "res" and entry.kind == "task":
                # Task results are content-addressed by the runner exactly
                # like dispatch payloads; resolve refs against this host's
                # mirror (storing fresh VALs) before the converter runs.
                try:
                    counts: Dict[str, int] = {}
                    value = host.payloads.decode(value, counts=counts)
                    if entry.tracer is not None:
                        if counts.get("hit"):
                            entry.tracer.inc("cluster.payload_hit", counts["hit"])
                        if counts.get("miss"):
                            entry.tracer.inc("cluster.payload_miss", counts["miss"])
                except BaseException as decode_exc:  # noqa: BLE001 - relayed
                    entry.future.set_exception(decode_exc)
                    continue
            extras = frame[3] if len(frame) > 3 else None
            if extras:
                timer = extras.get("timer")
                if timer is not None:
                    host.runner_timer.merge(timer)
                if entry.tracer is not None:
                    buffer = extras.get("trace")
                    if buffer is not None:
                        entry.tracer.absorb(
                            buffer,
                            window=(entry.t_send, t_recv),
                            tags={"round": entry.round_index, "host": host.host_id},
                        )
            try:
                if entry.convert is not None:
                    value = entry.convert(value)
            except BaseException as convert_exc:  # noqa: BLE001 - relayed
                entry.future.set_exception(convert_exc)
                continue
            entry.future.set_result(value)

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------

    def _send_loop(self, host: _Host) -> None:
        """Per-host dispatcher: writes queued pre-encoded frames to the socket.

        Dispatch runs off the caller's thread so a large frame whose
        ``sendall`` blocks (runner busy, socket buffer full) stalls only this
        host's queue — the caller keeps submitting to the other hosts.
        Frames arrive here already serialized (and already accounted in the
        wire ledger), so the only failure mode left is the socket itself.
        """
        while True:
            item = host.send_queue.get()
            if item is None:
                return
            frame, seq = item
            if host.dead is not None:
                continue  # its pending entry was already failed
            try:
                host.channel.send_frame(frame)
            except OSError as exc:
                if host.dead is None:
                    self._mark_dead(host, f"dispatch failed: {exc}")

    def _submit_frame(
        self,
        host: _Host,
        build_frame: Callable[[int], Tuple],
        *,
        wire: Optional[WireLedger],
        round_index: int,
        kind: str,
        convert: Optional[Callable[[Any], Any]],
        tracer=None,
    ) -> Future:
        future: Future = Future()
        with self._submit_lock:
            self._seq += 1
            seq = self._seq
        # Serialize on the submitting thread: an unpicklable dispatch fails
        # just this task (the stream never sees a byte of it), and the wire
        # ledger is complete the moment the future resolves — the sender
        # thread only ever pushes already-accounted bytes.  The host's
        # encode lock serialises encode+enqueue as one step: frame builders
        # may register payload digests in the host's cache, and a REF must
        # never be enqueued ahead of the VAL that defined it.
        codec = self.wire_policy.codec_for(kind)
        with host.encode_lock:
            try:
                frame = encode_frame(build_frame(seq), codec)
            except Exception as exc:  # noqa: BLE001 - relayed via the future
                future.set_exception(
                    RuntimeError(
                        f"task dispatch to cluster host {host.host_id} could not "
                        f"be serialized: {exc!r}"
                    )
                )
                return future
            # Register under the host lock with a dead-recheck: _mark_dead
            # sets ``dead`` before draining ``pending``, so either this entry
            # lands in the drain or the death is observed here — never an
            # unresolved future.
            entry = _Pending(future, wire, round_index, kind, convert)
            if tracer is not None and tracer.enabled:
                entry.tracer = tracer
                entry.t_send = tracer.clock()
            with host.lock:
                if host.dead is not None:
                    future.set_exception(RuntimeError(host.dead))
                    return future
                host.pending[seq] = entry
            if wire is not None:
                wire.record(
                    round_index=round_index, host=host.host_id,
                    direction="send", kind=kind + "_dispatch",
                    n_bytes=frame.n_bytes, raw_bytes=frame.raw_bytes,
                    codec=frame.codec,
                )
                if entry.tracer is not None:
                    # Mirror of the wire record (see _read_loop): counters
                    # bump at the ledger's exact recording points — raw into
                    # ``wire.bytes*``, physical into ``wire.bytes_encoded*``.
                    entry.tracer.inc("wire.bytes", frame.raw_bytes)
                    entry.tracer.inc("wire.bytes.send", frame.raw_bytes)
                    entry.tracer.inc(f"wire.bytes.{kind}_dispatch", frame.raw_bytes)
                    entry.tracer.inc("wire.bytes_encoded", frame.n_bytes)
                    entry.tracer.inc("wire.bytes_encoded.send", frame.n_bytes)
                    entry.tracer.inc(f"wire.bytes_encoded.{kind}_dispatch", frame.n_bytes)
            host.send_queue.put((frame, seq))
        return future

    def submit_tasks(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        wire: Optional[WireLedger] = None,
        round_index: int = 0,
        tracer=None,
    ) -> List[Future]:
        """Ship structure-free tasks to the runners, one future per payload.

        Payload ``i`` runs on host ``i % n_hosts`` — deterministic placement,
        so repeated runs exchange identical frame sequences.  Each payload is
        content-addressed against its host's
        :class:`~repro.cluster.payloads.PayloadCache` mirror at dispatch
        time: components the runner already holds collapse to their digests
        (``cluster.payload_hit``), fresh ones ship once and register on both
        ends.  A ``tracer`` (traced runs only) records wire spans and byte
        counters, and asks the runner — via a fifth frame slot the untraced
        dispatch never carries — to trace the task body.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        traced = tracer is not None and tracer.enabled
        hosts = self._ensure_started()

        def build_task(seq: int, host: _Host, payload: Any) -> Tuple:
            # Runs under the host's encode lock (see _submit_frame), so the
            # digests this encode registers are enqueued in cache order.
            counts: Dict[str, int] = {}
            encoded = host.payloads.encode(payload, counts=counts)
            if traced:
                if counts.get("hit"):
                    tracer.inc("cluster.payload_hit", counts["hit"])
                if counts.get("miss"):
                    tracer.inc("cluster.payload_miss", counts["miss"])
                return ("task", seq, fn, encoded, True)
            return ("task", seq, fn, encoded)

        futures = []
        for index, payload in enumerate(payloads):
            host = hosts[index % len(hosts)]
            futures.append(
                self._submit_frame(
                    host,
                    lambda seq, host=host, payload=payload: build_task(seq, host, payload),
                    wire=wire, round_index=round_index, kind="task", convert=None,
                    tracer=tracer,
                )
            )
        return futures

    def submit_site_pairs(
        self,
        pairs: Sequence[Tuple[Any, Any]],
        *,
        wire: Optional[WireLedger] = None,
        round_index: int = 0,
        tracer=None,
    ) -> List[Future]:
        """Ship ``(SiteTask, SiteContext)`` pairs, returning SiteTaskResult futures.

        Site ``s`` is pinned to host ``s % n_hosts``, and its
        ``(shard, local_metric)`` sticky half is shipped only the first time
        the host sees the context's ``resident_key`` — later rounds reuse the
        runner-resident copy.  Mutable state gets the same residency: when
        ``ctx.state`` is the :class:`~repro.runtime.state.RemoteStateProxy`
        this backend produced for the same key, the dispatch carries only an
        epoch token plus the coordinator's write overlay; otherwise (first
        round, residency cleared, foreign proxy) the full dict is shipped
        and the runner adopts it.
        """
        pairs = list(pairs)
        if not pairs:
            return []
        traced = tracer is not None and tracer.enabled
        hosts = self._ensure_started()
        futures = []
        for task, ctx in pairs:
            host = hosts[ctx.site_id % len(hosts)]
            key = getattr(ctx, "resident_key", None)
            evict: List[Any] = []
            if key is not None and key in host.resident_keys:
                if traced:
                    tracer.inc("cluster.resident_hit")
                sticky = None
            else:
                if traced and key is not None:
                    tracer.inc("cluster.resident_miss")
                sticky = (ctx.shard, ctx.local_metric)
                if key is not None:
                    # A fresh key for an already-seen site slot means a new
                    # protocol run took it over: the superseded entry is
                    # evicted remotely, so a shared warm pool never grows
                    # its runner memory with dead runs' metrics.
                    stale = host.resident_by_site.get(ctx.site_id)
                    if stale is not None and stale != key:
                        # Materialise the old run's proxy (if it is still
                        # alive) before its runner-side copy disappears.
                        self._detach_resident_key(stale)
                        evict.append(stale)
                        host.resident_keys.discard(stale)
                    host.resident_keys.add(key)
                    host.resident_by_site[ctx.site_id] = key
            state = self._encode_dispatch_state(ctx.state, key)
            if traced:
                tracer.inc(
                    "cluster.state_token" if is_state_token(state) else "cluster.state_ship"
                )
            dyn = {
                "site_id": ctx.site_id,
                "fn": task.fn,
                "args": task.args,
                "kwargs": task.kwargs,
                "state": state,
                "rng": ctx.rng,
                "inbox": ctx.inbox,
            }
            if traced:
                # Only traced dispatches carry the extra key, so untraced
                # frames stay byte-identical to an untraced build.
                dyn["trace"] = True
            convert = self._site_result_converter(
                host, key, ctx.site_id, wire, round_index, tracer
            )

            def build_site(seq, host=host, key=key, sticky=sticky, dyn=dyn, evict=evict):
                if evict:
                    # Slot eviction ends payload residency with it: clearing
                    # the mirror here — under the encode lock, at the same
                    # frame that tells the runner to evict — keeps both
                    # ends' caches symmetric in frame order.
                    host.payloads.clear()
                return ("site", seq, key, sticky, dyn, evict)

            futures.append(
                self._submit_frame(
                    host, build_site,
                    wire=wire, round_index=round_index, kind="site",
                    convert=convert, tracer=tracer,
                )
            )
        return futures

    # ------------------------------------------------------------------
    # Resident mutable state
    # ------------------------------------------------------------------

    def _encode_dispatch_state(self, state: Any, key: Any) -> Any:
        """What the dispatch frame carries in its state slot.

        An attached current-epoch proxy of this backend collapses to its
        epoch token (plus the coordinator-side write overlay); anything else
        — a plain dict, a detached proxy, a proxy of another backend —
        materialises into a full dict the runner adopts.
        """
        if (
            isinstance(state, RemoteStateProxy)
            and not state.detached
            and state.owner() is self
            and state.resident_key == key
        ):
            with self._state_lock:
                ref = self._live_state.get(key)
            if ref is not None and ref() is state:
                return state.dispatch_token()
        return materialize_state(state)

    def _site_result_converter(
        self,
        host: _Host,
        key: Any,
        site_id: int,
        wire: Optional[WireLedger],
        round_index: int,
        tracer=None,
    ) -> Callable[[dict], Any]:
        """Build the wire->SiteTaskResult decoder for one dispatched site task.

        Runs on the reader thread when the result frame arrives; a state
        digest in the frame becomes a :class:`RemoteStateProxy` registered
        as the key's current-epoch view.
        """
        from repro.runtime.tasks import Outgoing, SiteTaskResult

        def convert(result: dict):
            outbox = [
                Outgoing(
                    kind=kind, payload=decode_payload(blob), words=words,
                    n_bytes=n_bytes, n_bytes_encoded=n_encoded,
                )
                for kind, blob, words, n_bytes, n_encoded in result["outbox"]
            ]
            state = result["state"]
            if is_state_digest(state) and key is not None:
                _, epoch, sizes = state
                proxy = RemoteStateProxy(
                    resident_key=key,
                    site_id=site_id,
                    epoch=epoch,
                    sizes=sizes,
                    fetch=lambda keys: self._pull_state_entries(
                        host, key, epoch, keys, wire, round_index, tracer
                    ),
                    owner=self,
                )
                with self._state_lock:
                    self._live_state[key] = weakref.ref(proxy)
                state = proxy
            return SiteTaskResult(
                site_id=result["site_id"],
                value=result["value"],
                state=state,
                timer=result["timer"],
                rng=result["rng"],
                outbox=outbox,
            )

        return convert

    def _pull_state_entries(
        self,
        host: _Host,
        key: Any,
        epoch: int,
        keys: Sequence[str],
        wire: Optional[WireLedger],
        round_index: int,
        tracer=None,
    ) -> Dict[str, Any]:
        """Fault resident-state entries from a runner (a proxy read missed).

        The pull frames land in the same wire ledger as the round that
        produced the digest, so the ledger stays an honest account of every
        byte the protocol's state handling moved.
        """
        hosts = self._hosts
        if hosts is None or host not in hosts:
            raise RuntimeError(
                f"cannot fault state entries {list(keys)!r} for {key!r}: the "
                "cluster backend holding them was closed (pull_state() first)"
            )
        keys = list(keys)
        if tracer is not None and tracer.enabled:
            tracer.inc("cluster.state_pulls")
            tracer.event(
                "state_pull", host=host.host_id, round=round_index,
                epoch=epoch, keys=len(keys),
            )
        future = self._submit_frame(
            host,
            lambda seq: ("pull_state", seq, key, epoch, keys),
            wire=wire, round_index=round_index, kind="state_pull", convert=None,
            tracer=tracer,
        )
        return future.result()

    def _detach_resident_key(self, key: Any) -> None:
        """Forget a key's proxy registration, materialising it if still alive.

        Called right before the runner-side copy goes away (slot eviction,
        :meth:`clear_resident`): a live proxy pulls its remaining entries so
        nothing the coordinator could still read is lost; a dead proxy means
        nobody can read the state anymore and nothing needs shipping.
        """
        with self._state_lock:
            ref = self._live_state.pop(key, None)
        proxy = ref() if ref is not None else None
        if proxy is not None and not proxy.detached:
            proxy.pull_state()

    def runner_timers(self) -> Dict[int, Timer]:
        """Per-host runner overhead totals merged from result-frame extras.

        Every result frame carries the runner's own ``cluster:*`` timer for
        that frame (task execution, outbox/digest encoding); the reader
        threads fold them into one accumulating :class:`Timer` per host.
        The returned timers are snapshots — safe to read after
        :meth:`close`, empty when the pool never started.
        """
        if self._hosts is None:
            return {}
        out: Dict[int, Timer] = {}
        for host in self._hosts:
            snapshot = Timer()
            snapshot.merge(host.runner_timer)
            out[host.host_id] = snapshot
        return out

    def submit_ordered(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> List[Future]:
        return self.submit_tasks(fn, list(items))

    def map_ordered(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [future.result() for future in self.submit_ordered(fn, items)]

    def clear_resident(self) -> None:
        """Drop all runner-resident site state (frees memory on shared pools).

        Everything resident goes: the sticky ``(shard, local_metric)``
        copies, the mutable per-site state *and* the content-addressed
        payload caches on both ends.  Live state proxies are materialised
        first — their remaining entries are pulled to the coordinator — so a
        mid-run clear loses nothing: the next dispatch simply re-ships the
        full context (sticky half, state dict, payload bytes) and results
        stay bit-identical.
        """
        if self._hosts is None:
            return
        with self._state_lock:
            keys = list(self._live_state)
        for key in keys:
            self._detach_resident_key(key)

        def build_clear(seq: int, host: _Host) -> Tuple:
            # Clearing the mirror under the encode lock, at the exact frame
            # that clears the runner, keeps cache membership symmetric:
            # frames encoded after this one re-ship their payload bytes.
            host.payloads.clear()
            return ("clear_resident", seq)

        futures = []
        for host in self._hosts:
            if host.dead is not None:
                continue
            host.resident_keys.clear()
            host.resident_by_site.clear()
            futures.append(
                self._submit_frame(
                    host, lambda seq, host=host: build_clear(seq, host),
                    wire=None, round_index=0, kind="task", convert=None,
                )
            )
        for future in futures:
            future.result()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "stopped" if self._hosts is None else "running"
        return f"ClusterBackend(n_hosts={self.n_hosts}, {state})"


__all__ = ["ClusterBackend"]
