"""The coordinator's selector-based event loop.

One :class:`EventLoop` thread multiplexes every runner channel of a
:class:`~repro.cluster.backend.ClusterBackend`: non-blocking reads feed each
channel's frame-reassembly buffer (:meth:`FrameChannel.read_ready` /
:meth:`~repro.cluster.framing.FrameChannel.take_frames`), writes drain the
channel's backpressured send queue
(:meth:`~repro.cluster.framing.FrameChannel.flush_out`) only while bytes are
actually queued, and periodic callbacks (heartbeat monitoring) run between
I/O batches.  This replaces the one-reader-plus-one-sender thread pair the
backend used to run per host — the coordinator's thread count is now O(1)
in the number of hosts, the shape a service admitting many concurrent jobs
needs.

Threading contract:

* Everything that touches the selector — registration, interest changes,
  timers — happens **on the loop thread**.  Other threads talk to the loop
  through :meth:`call_soon` (a thread-safe command queue drained every
  iteration, with a socketpair wakeup so a sleeping ``select`` notices) and
  the convenience wrappers built on it (:meth:`notify_write`,
  :meth:`register_channel`, :meth:`unregister_channel`).
* Frame callbacks run on the loop thread.  They must not block on work the
  loop itself serves — the backend's recovery replay, which waits on
  response futures, therefore runs on its own short-lived thread exactly as
  before.
* A channel error (EOF, ``ECONNRESET``, an undecodable frame) unregisters
  the channel and invokes its ``on_error`` callback once; the loop itself
  keeps serving the surviving channels.
"""

from __future__ import annotations

import selectors
import socket
import sys
import threading
import time
import traceback
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.cluster.framing import FrameChannel

#: One received frame as the loop hands it to a channel callback:
#: ``(object, wire_bytes, raw_bytes, codec_name)`` — the tuple
#: :meth:`FrameChannel.recv` returns.
Frame = Tuple[Any, int, int, str]


class TimerHandle:
    """A cancellable periodic callback registered with :meth:`EventLoop.call_every`."""

    __slots__ = ("interval", "fn", "deadline", "cancelled")

    def __init__(self, interval: float, fn: Callable[[], None]):
        self.interval = float(interval)
        self.fn = fn
        self.deadline = time.monotonic() + self.interval
        self.cancelled = False

    def cancel(self) -> None:
        """Stop future firings (idempotent; safe from any thread)."""
        self.cancelled = True


class _Registration:
    """Loop-side record for one managed channel."""

    __slots__ = ("fd", "channel", "on_frames", "on_error", "writing", "dead")

    def __init__(self, fd: int, channel: FrameChannel, on_frames, on_error):
        self.fd = fd
        self.channel = channel
        self.on_frames = on_frames
        self.on_error = on_error
        #: Whether write interest is currently registered for this fd.
        self.writing = False
        #: Set once on_error ran; later I/O and errors are ignored.
        self.dead = False


class EventLoop:
    """A selectors-driven reactor multiplexing many :class:`FrameChannel` s."""

    def __init__(self, name: str = "repro-cluster-loop"):
        self.name = name
        self._selector = selectors.DefaultSelector()
        # The wakeup pair: call_soon() from another thread writes one byte so
        # a sleeping select() returns and drains the command queue.
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._commands: Deque[Callable[[], None]] = deque()
        self._cmd_lock = threading.Lock()
        self._timers: List[TimerHandle] = []
        self._registrations: Dict[int, _Registration] = {}
        self._thread: Optional[threading.Thread] = None
        self._stopping = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the loop thread (idempotent while it is alive)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stopping = False
        self._thread = threading.Thread(target=self._run, name=self.name, daemon=True)
        self._thread.start()

    @property
    def thread(self) -> Optional[threading.Thread]:
        """The loop thread (None before :meth:`start`)."""
        return self._thread

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stop(self, join: bool = True, timeout: float = 5.0) -> None:
        """Stop the loop thread and release the selector/wakeup fds.

        Idempotent.  Registered channels are *not* closed — their owner
        (the backend) drains and closes them after the loop is gone, with
        the sockets back in blocking mode.
        """
        if self._thread is not None and self._thread.is_alive():
            self.call_soon(self._request_stop)
            if join:
                self._thread.join(timeout=timeout)
        self._thread = None
        if not self._closed:
            self._closed = True
            try:
                self._selector.close()
            except OSError:  # pragma: no cover - selector already gone
                pass
            self._wake_r.close()
            self._wake_w.close()

    def _request_stop(self) -> None:
        self._stopping = True

    # ------------------------------------------------------------------
    # Thread-safe entry points
    # ------------------------------------------------------------------

    def call_soon(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` on the loop thread at the next iteration (thread-safe)."""
        with self._cmd_lock:
            self._commands.append(fn)
        try:
            self._wake_w.send(b"\0")
        except (BlockingIOError, InterruptedError):
            pass  # a wake byte is already pending; that is enough
        except OSError:
            pass  # loop already shut down; stop() drains the queue anyway

    def call_every(self, interval: float, fn: Callable[[], None]) -> TimerHandle:
        """Register a periodic callback on the loop thread (thread-safe)."""
        handle = TimerHandle(interval, fn)
        self.call_soon(lambda: self._timers.append(handle))
        return handle

    def register_channel(
        self,
        channel: FrameChannel,
        on_frames: Callable[[List[Frame]], None],
        on_error: Callable[[BaseException], None],
    ) -> None:
        """Adopt one non-blocking channel into the loop (thread-safe).

        ``on_frames`` receives every batch of complete frames the channel
        produces; ``on_error`` fires once when the channel dies (EOF, socket
        error, undecodable frame) after it was unregistered.
        """
        reg = _Registration(channel.fileno(), channel, on_frames, on_error)
        if self.is_alive():
            self.call_soon(lambda: self._do_register(reg))
        else:
            self._do_register(reg)

    def _do_register(self, reg: _Registration) -> None:
        self._registrations[reg.fd] = reg
        self._selector.register(reg.fd, selectors.EVENT_READ, reg)

    def unregister_channel(self, channel: FrameChannel) -> None:
        """Forget a channel without treating it as dead (thread-safe)."""

        def drop() -> None:
            for reg in list(self._registrations.values()):
                if reg.channel is channel:
                    self._drop_registration(reg)

        if self.is_alive():
            self.call_soon(drop)
        else:
            drop()

    def notify_write(self, channel: FrameChannel) -> None:
        """Tell the loop ``channel`` has queued bytes to flush (thread-safe)."""
        self.call_soon(lambda: self._enable_write(channel))

    def _enable_write(self, channel: FrameChannel) -> None:
        for reg in self._registrations.values():
            if reg.channel is channel:
                if not reg.writing and not reg.dead and channel.pending_out:
                    reg.writing = True
                    self._selector.modify(
                        reg.fd, selectors.EVENT_READ | selectors.EVENT_WRITE, reg
                    )
                return

    # ------------------------------------------------------------------
    # Loop body
    # ------------------------------------------------------------------

    def _drop_registration(self, reg: _Registration) -> None:
        self._registrations.pop(reg.fd, None)
        try:
            self._selector.unregister(reg.fd)
        except (KeyError, ValueError, OSError):
            pass

    def _channel_error(self, reg: _Registration, exc: BaseException) -> None:
        if reg.dead:
            return
        reg.dead = True
        self._drop_registration(reg)
        try:
            reg.on_error(exc)
        except Exception:  # noqa: BLE001 - a dying channel must not kill the loop
            traceback.print_exc(file=sys.stderr)

    def _service(self, reg: _Registration, mask: int) -> None:
        if reg.dead:
            return
        if mask & selectors.EVENT_WRITE:
            try:
                drained = reg.channel.flush_out()
            except ConnectionError as exc:
                self._channel_error(reg, exc)
                return
            if drained and reg.writing:
                reg.writing = False
                self._selector.modify(reg.fd, selectors.EVENT_READ, reg)
        if mask & selectors.EVENT_READ:
            try:
                n = reg.channel.read_ready()
            except ConnectionError as exc:
                self._channel_error(reg, exc)
                return
            if n == -1:
                return
            try:
                frames = reg.channel.take_frames()
            except Exception as exc:  # noqa: BLE001 - undecodable frame
                self._channel_error(reg, exc)
                return
            if frames:
                try:
                    reg.on_frames(frames)
                except Exception as exc:  # noqa: BLE001 - callback bug
                    self._channel_error(reg, exc)

    def _run_commands(self) -> None:
        while True:
            with self._cmd_lock:
                if not self._commands:
                    return
                fn = self._commands.popleft()
            try:
                fn()
            except Exception:  # noqa: BLE001 - a bad command must not kill the loop
                traceback.print_exc(file=sys.stderr)

    def _run_timers(self, now: float) -> None:
        due = [t for t in self._timers if not t.cancelled and t.deadline <= now]
        self._timers = [t for t in self._timers if not t.cancelled]
        for timer in due:
            timer.deadline = now + timer.interval
            try:
                timer.fn()
            except Exception:  # noqa: BLE001 - a bad timer must not kill the loop
                traceback.print_exc(file=sys.stderr)

    def _select_timeout(self) -> Optional[float]:
        deadlines = [t.deadline for t in self._timers if not t.cancelled]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())

    def _run(self) -> None:
        while not self._stopping:
            try:
                events = self._selector.select(self._select_timeout())
            except OSError:
                # A registered fd was closed out from under the selector (a
                # fault-plan "disconnect" from a dispatching thread).  Sweep
                # the registrations for dead fds and keep serving the rest.
                self._sweep_closed()
                continue
            for key, mask in events:
                if key.data is None:
                    # Wakeup byte(s): drain and fall through to the commands.
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, InterruptedError):
                        pass
                    except OSError:  # pragma: no cover - shutdown race
                        pass
                    continue
                self._service(key.data, mask)
            self._run_commands()
            self._run_timers(time.monotonic())

    def _sweep_closed(self) -> None:
        for reg in list(self._registrations.values()):
            try:
                fd = reg.channel.fileno()
            except OSError:
                fd = -1
            if fd == -1 or fd != reg.fd:
                self._channel_error(
                    reg, ConnectionError("channel socket was closed")
                )


__all__ = ["EventLoop", "Frame", "TimerHandle"]
