"""Content-addressed payload residency for structure-free task frames.

PR 4/5 made *site* state runner-resident: the sticky ``(shard, metric)``
half ships once and mutable state crosses as digests.  Structure-free
:func:`repro.runtime.run_tasks` payloads bypassed all of it — center_g's
collapse matrices re-crossed the wire on every dispatch.  This module
extends the same amortisation to generic payloads by *content addressing*
them: every sufficiently large payload component is priced by its
standalone pickled bytes, keyed by a digest of those bytes, and cached on
**both ends** of a channel.  The first crossing carries the bytes (and both
ends store them); every later crossing of the same content — in either
direction — carries only the 16-byte digest.

The scheme is symmetric and order-driven, which is what makes it work
without negotiation:

* :meth:`PayloadCache.encode` walks a payload (dicts up to
  :data:`ENCODE_DEPTH` levels; anything else is one component), pickles
  each component, and replaces it with a ``(VAL, digest, blob)`` tuple on
  first sight or a ``(REF, digest)`` tuple when the digest is already
  cached.  Components under :data:`MIN_COMPONENT_BYTES` stay inline — the
  tuple overhead cannot win there.
* :meth:`PayloadCache.decode` is the inverse: a ``VAL`` stores the blob
  and unpickles it, a ``REF`` unpickles the cached blob.  Decodes always
  produce *fresh* objects (a cache hit re-unpickles the stored bytes), so
  a task mutating its payload never corrupts the cache.
* Every ``VAL`` additionally registers an *alias* digest: the digest of
  ``dumps(loads(blob))``.  Re-pickling a decoded object graph is not
  byte-identical to the original pickle (string-memoization accidents of
  the live graph disappear after a round trip), but it *is* a stable
  fixpoint — so when a decoded component is later re-encoded on either
  end, its digest lands on the alias and the crossing still collapses to
  a ``REF``.  Both ends compute the alias from the same blob at the same
  frame, so membership stays symmetric.

Because frames on one channel are strictly FIFO and both ends update the
cache at the frame's encode/decode point, a ``REF`` can never arrive before
its ``VAL`` did — provided the sender serialises encode+enqueue (the
backend holds a per-host lock across that window).  The caches are dropped
together with the runner-resident state (``clear_resident`` and warm-pool
slot eviction), so a shared pool's memory stays bounded and a re-dispatch
after eviction honestly re-ships its bytes.

This is the coordinator/runner twin of the resident-state digests in
:mod:`repro.runtime.state`, applied at the serialization layer: protocols
don't change at all, their repeated payloads just stop costing wire bytes.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Dict, MutableMapping, Optional

from repro.cluster.framing import decode_payload, encode_payload

#: First element of an encoded component carrying its bytes (first crossing).
PAYLOAD_VAL_TAG = "__repro_payload_val__"

#: First element of an encoded component referencing already-cached bytes.
PAYLOAD_REF_TAG = "__repro_payload_ref__"

#: Components whose standalone pickle is smaller than this stay inline:
#: below ~1 KiB the digest tuple plus cache bookkeeping costs more than the
#: bytes it could ever save.
MIN_COMPONENT_BYTES = 1024

#: How deep :meth:`PayloadCache.encode` walks nested dicts before treating
#: the remainder as one component.  Depth 3 splits a ``run_tasks`` payload
#: dict, a ``state`` dict nested inside it *and* a per-key map nested in
#: that (center_g's per-tau precluster dict) into individually cacheable
#: components, so one mutated entry doesn't force its siblings back onto
#: the wire.
ENCODE_DEPTH = 3


def payload_digest(blob: bytes) -> bytes:
    """Content address of one pickled component (16-byte blake2b)."""
    return hashlib.blake2b(blob, digest_size=16).digest()


def is_payload_val(obj: Any) -> bool:
    """True for a ``(VAL, digest, blob)`` encoded component."""
    return (
        type(obj) is tuple
        and len(obj) == 3
        and obj[0] == PAYLOAD_VAL_TAG
        and type(obj[1]) is bytes
        and type(obj[2]) is bytes
    )


def is_payload_ref(obj: Any) -> bool:
    """True for a ``(REF, digest)`` encoded component."""
    return type(obj) is tuple and len(obj) == 2 and obj[0] == PAYLOAD_REF_TAG and type(obj[1]) is bytes


class PayloadCache:
    """Digest-addressed store of pickled payload components for one channel.

    The coordinator keeps one per host, mirroring the cache the host's
    runner keeps — both ends apply the same store-on-VAL rule at encode
    *and* decode time, so membership stays identical without any cache
    -control traffic.  ``counts`` (when given) is a mutable mapping whose
    ``"hit"``/``"miss"`` entries are incremented per component decision,
    the backend's hook for the ``cluster.payload_hit``/``_miss`` counters.
    """

    def __init__(self) -> None:
        self._store: Dict[bytes, bytes] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._store)

    def stored_bytes(self) -> int:
        """Total pickled bytes currently resident in the cache."""
        with self._lock:
            return sum(len(blob) for blob in self._store.values())

    def clear(self) -> None:
        """Drop every cached component (mirror of ``clear_resident``)."""
        with self._lock:
            self._store.clear()

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def _register_alias(self, blob: bytes) -> None:
        """Register the round-trip digest of ``blob`` (see module docstring).

        ``dumps(loads(blob))`` is a stable fixpoint of pickling, so this is
        the digest the component will re-encode to after crossing a channel;
        both ends call this at the component's VAL frame, keeping the alias
        resident symmetrically.
        """
        roundtrip = encode_payload(decode_payload(blob))
        alias = payload_digest(roundtrip)
        with self._lock:
            self._store.setdefault(alias, roundtrip)

    def _encode_component(self, value: Any, counts: Optional[MutableMapping[str, int]]) -> Any:
        blob = encode_payload(value)
        if len(blob) < MIN_COMPONENT_BYTES:
            return value
        digest = payload_digest(blob)
        with self._lock:
            known = digest in self._store
            if not known:
                self._store[digest] = blob
        if counts is not None:
            counts["hit" if known else "miss"] = counts.get("hit" if known else "miss", 0) + 1
        if known:
            return (PAYLOAD_REF_TAG, digest)
        self._register_alias(blob)
        return (PAYLOAD_VAL_TAG, digest, blob)

    def _encode_value(self, value: Any, depth: int, counts) -> Any:
        if isinstance(value, dict) and depth > 0:
            return {k: self._encode_value(v, depth - 1, counts) for k, v in value.items()}
        return self._encode_component(value, counts)

    def encode(
        self, payload: Any, *, counts: Optional[MutableMapping[str, int]] = None
    ) -> Any:
        """Content-address one outbound payload.

        Returns a structure the peer's :meth:`decode` inverts exactly;
        components already known to both ends are replaced by their digest.
        """
        return self._encode_value(payload, ENCODE_DEPTH, counts)

    def _decode_value(self, value: Any, counts) -> Any:
        if isinstance(value, dict):
            return {k: self._decode_value(v, counts) for k, v in value.items()}
        if is_payload_val(value):
            _, digest, blob = value
            with self._lock:
                self._store.setdefault(digest, blob)
            self._register_alias(blob)
            if counts is not None:
                counts["miss"] = counts.get("miss", 0) + 1
            return decode_payload(blob)
        if is_payload_ref(value):
            _, digest = value
            with self._lock:
                blob = self._store.get(digest)
            if blob is None:
                raise RuntimeError(
                    f"payload reference {digest.hex()} is not resident on this end "
                    "of the channel (cache cleared out of order?)"
                )
            if counts is not None:
                counts["hit"] = counts.get("hit", 0) + 1
            return decode_payload(blob)
        return value

    def decode(
        self, payload: Any, *, counts: Optional[MutableMapping[str, int]] = None
    ) -> Any:
        """Inverse of :meth:`encode`, resolving refs against the cache.

        Every decode unpickles fresh objects — two decodes of the same
        digest never alias, so callers may mutate results freely.
        """
        return self._decode_value(payload, counts)


__all__ = [
    "ENCODE_DEPTH",
    "MIN_COMPONENT_BYTES",
    "PAYLOAD_REF_TAG",
    "PAYLOAD_VAL_TAG",
    "PayloadCache",
    "is_payload_ref",
    "is_payload_val",
    "payload_digest",
]
