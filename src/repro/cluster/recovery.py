"""Fault tolerance for the cluster backend: policies, fault injection, replay logs.

The paper's protocols are round-structured and *deterministic*: a site task is
a pure function of its sticky half (shard + local metric), the dispatched
state (full dict or epoch token over the previous epoch), its RNG stream and
its inbox.  That makes recovery a replicated-deterministic-state-machine
problem rather than an ad-hoc patching one — the same shape as the
Paxos-replicated state machine the ROADMAP references: re-executing the
per-site dispatch log on a surviving host reproduces the dead runner's
resident state bit for bit, which the state digests shipped with every epoch
let us *assert* rather than assume.

This module holds the coordinator-side vocabulary of that story:

* :class:`DeadHostError` — the typed terminal failure, carrying the host id,
  round and last committed state epoch so callers can log something useful.
* :class:`RetryPolicy` — how many host deaths a run tolerates, backoff, an
  optional heartbeat timeout for wedged-but-connected runners, and
  ``fail_fast=True`` restoring the historical die-with-the-runner behaviour
  (the default for a bare :class:`~repro.cluster.backend.ClusterBackend`).
* :class:`FaultPlan` / :class:`FaultAction` — a deterministic fault-injection
  harness: *kill host H before task T of round R*, stall a runner (SIGSTOP,
  exercising the heartbeat path), drop a connection, or delay frames.  Plans
  parse from a compact spec string and from the ``REPRO_FAULT_PLAN``
  environment knob, so CI can run the whole cluster suite under injected
  faults without touching a single test.
* :class:`SiteLog` / :class:`SiteDispatchRecord` — the per-``resident_key``
  dispatch log the backend checkpoints each round: everything needed to
  rebuild a dead host's resident site state on a survivor (fn/args/kwargs,
  the pickled RNG stream, the inbox, the exact state slot that was shipped —
  epoch token with its write overlay, or the full dict) plus the
  ``(epoch, sizes)`` digest of every completed record for replay
  verification.

The heavy machinery — death classification, re-pinning, replay — lives in
:class:`~repro.cluster.backend.ClusterBackend`, which owns the sockets and
threads these records describe.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Environment knob holding a :meth:`FaultPlan.parse` spec; every
#: ``ClusterBackend`` constructed without an explicit ``fault_plan`` picks it
#: up, so CI can fault-inject an entire test suite.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment knob the backend sets for its runner children when the retry
#: policy configures a heartbeat: the runner-side send interval in seconds.
HEARTBEAT_INTERVAL_ENV = "REPRO_HEARTBEAT_INTERVAL"


class DeadHostError(RuntimeError):
    """A runner died and its in-flight work could not (or must not) be recovered.

    Subclasses :class:`RuntimeError` so existing callers that match on the
    historical error type keep working; carries structured context —
    ``host_id``, ``round_index``, the last committed state ``epoch`` and the
    in-flight ``task_ids`` — for callers that want more than the message.
    """

    def __init__(
        self,
        message: str,
        *,
        host_id: Optional[int] = None,
        round_index: Optional[int] = None,
        epoch: Optional[int] = None,
        task_ids: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(message)
        self.host_id = host_id
        self.round_index = round_index
        self.epoch = epoch
        self.task_ids = tuple(task_ids or ())


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`~repro.cluster.backend.ClusterBackend` treats runner death.

    ``max_retries`` bounds the number of host deaths one backend instance
    absorbs before failing terminally (each death consumes one retry,
    whatever the number of sites re-pinned).  ``backoff_s`` sleeps before a
    recovery attempt — pointless in tests, kind to a production scheduler.
    ``heartbeat_timeout`` (seconds, ``None`` disables) additionally detects
    runners that are *silent but connected* — wedged, SIGSTOPped, swapping —
    by killing any host whose socket has produced no frame or heartbeat for
    that long while work is in flight; runners send unsolicited heartbeats
    every ``timeout / 4`` seconds so a long-running task never looks dead.
    ``fail_fast=True`` restores the historical behaviour (death fails the
    run), which is also what plain ``ClusterBackend()`` defaults to —
    recovery is opt-in via ``retry=RetryPolicy(...)``.
    """

    max_retries: int = 1
    backoff_s: float = 0.0
    heartbeat_timeout: Optional[float] = None
    fail_fast: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.heartbeat_timeout is not None and self.heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be > 0 or None, got {self.heartbeat_timeout}"
            )

    @property
    def enabled(self) -> bool:
        """True when runner death triggers recovery instead of failure."""
        return not self.fail_fast and self.max_retries > 0


#: The historical contract: a dead runner fails the run.  This is what a
#: backend constructed without ``retry=`` uses.
FAIL_FAST = RetryPolicy(max_retries=0, fail_fast=True)


def resolve_retry_policy(retry: Optional[RetryPolicy]) -> RetryPolicy:
    """Normalise a user-supplied ``retry`` argument (``None`` → fail fast)."""
    if retry is None:
        return FAIL_FAST
    if isinstance(retry, RetryPolicy):
        return retry
    raise TypeError(
        f"retry must be a RetryPolicy or None, got {type(retry).__name__}"
    )


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------

_FAULT_OPS = ("kill", "stall", "disconnect", "delay")
_MATCH_KINDS = ("site", "task")


@dataclass
class FaultAction:
    """One injected fault: *do <op> at a matching dispatch/result point*.

    Trigger points are the backend's own accounting points: ``when="before"``
    fires as a matching frame is dispatched (before any byte is queued),
    ``when="after"`` as its result is processed, and ``when="io"`` fires on
    the event-loop thread at an exact *loop-dispatch ordinal* — ``task`` then
    counts the reply frames the coordinator's selector loop has handled for
    that host (in arrival order, which the single loop serialises), so a
    kill/stall/disconnect lands at a reproducible point of the I/O schedule
    no matter how dispatch threads interleave.  For ``before``/``after``,
    ``task`` is the 1-based ordinal of site/task dispatches to that
    ``(host, round)`` — deterministic because placement and submission order
    are.  Unset fields match anything.  One-shot by default; ``delay`` recurs
    unless ``once=true`` is given.
    """

    op: str
    host: Optional[int] = None
    round_index: Optional[int] = None
    task: Optional[int] = None
    when: str = "before"
    kind: Optional[str] = None
    seconds: float = 0.0
    once: bool = True
    fired: bool = False

    def __post_init__(self) -> None:
        if self.op not in _FAULT_OPS:
            raise ValueError(f"unknown fault op {self.op!r} (expected one of {_FAULT_OPS})")
        if self.when not in ("before", "after", "io"):
            raise ValueError(
                f"when must be 'before', 'after' or 'io', got {self.when!r}"
            )
        if self.kind is not None and self.kind not in _MATCH_KINDS:
            raise ValueError(f"kind must be one of {_MATCH_KINDS}, got {self.kind!r}")
        if self.op == "delay" and self.seconds <= 0:
            raise ValueError("delay requires seconds > 0")

    def matches(
        self, host: int, round_index: int, kind: str, ordinal: int, when: str
    ) -> bool:
        if self.fired and self.once:
            return False
        if self.when != when:
            return False
        if self.host is not None and host != self.host:
            return False
        if self.round_index is not None and round_index != self.round_index:
            return False
        if self.kind is not None and kind != self.kind:
            return False
        if self.task is not None and ordinal != self.task:
            return False
        return True


class FaultPlan:
    """A deterministic schedule of injected faults for one backend instance.

    Specs are ``;``-separated actions, each ``<op> key=value ...``::

        kill host=2 round=2 task=1 when=before
        stall host=1 round=0 task=1
        disconnect host=0 round=1 when=after
        delay kind=site seconds=0.002

    Keys: ``host`` / ``round`` / ``task`` (ints; ``task`` is the 1-based
    dispatch ordinal within that host and round), ``when`` (``before`` |
    ``after`` | ``io``, default ``before``), ``kind`` (``site`` | ``task``),
    ``seconds`` (float, ``delay`` only), ``once`` (``true`` | ``false``).
    The plan is thread-safe; dispatch ordinals are counted per
    ``(host, round)`` over site/task frames only, so control traffic never
    shifts a trigger point.  ``when=io`` ordinals are counted separately, per
    host, over the reply frames the coordinator's event loop handles for that
    host (heartbeats and control chatter excluded) — the loop serialises
    per-host frame handling, so an io trigger point is race-free by
    construction.
    """

    def __init__(self, actions: Sequence[FaultAction]):
        self.actions: List[FaultAction] = list(actions)
        self._lock = threading.Lock()
        self._ordinals: Dict[Tuple[int, int], int] = {}
        self._io_ordinals: Dict[int, int] = {}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        actions: List[FaultAction] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            tokens = part.split()
            op = tokens[0].lower()
            fields: Dict[str, Any] = {"op": op}
            if op == "delay":
                fields["once"] = False
            for token in tokens[1:]:
                if "=" not in token:
                    raise ValueError(
                        f"bad fault token {token!r} in {part!r} (expected key=value)"
                    )
                key, _, value = token.partition("=")
                key = key.lower()
                if key in ("host", "task"):
                    fields[key] = int(value)
                elif key == "round":
                    fields["round_index"] = int(value)
                elif key == "when":
                    fields["when"] = value.lower()
                elif key == "kind":
                    fields["kind"] = value.lower()
                elif key == "seconds":
                    fields["seconds"] = float(value)
                elif key == "once":
                    fields["once"] = value.lower() in ("1", "true", "yes")
                else:
                    raise ValueError(f"unknown fault key {key!r} in {part!r}")
            actions.append(FaultAction(**fields))
        if not actions:
            raise ValueError(f"fault plan spec {spec!r} contains no actions")
        return cls(actions)

    @classmethod
    def from_env(cls, environ: Optional[Dict[str, str]] = None) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULT_PLAN``, or ``None`` when unset."""
        spec = (environ if environ is not None else os.environ).get(
            FAULT_PLAN_ENV, ""
        ).strip()
        return cls.parse(spec) if spec else None

    def next_ordinal(self, host: int, round_index: int) -> int:
        """Count (and return) one more site/task dispatch to ``(host, round)``."""
        with self._lock:
            key = (host, round_index)
            self._ordinals[key] = self._ordinals.get(key, 0) + 1
            return self._ordinals[key]

    def next_io_ordinal(self, host: int) -> int:
        """Count (and return) one more loop-handled reply frame from ``host``."""
        with self._lock:
            self._io_ordinals[host] = self._io_ordinals.get(host, 0) + 1
            return self._io_ordinals[host]

    @property
    def has_io_actions(self) -> bool:
        """Whether any action triggers at a loop-dispatch (``when=io``) point."""
        return any(action.when == "io" for action in self.actions)

    def take(
        self, host: int, round_index: int, kind: str, ordinal: int, when: str
    ) -> List[FaultAction]:
        """Matching actions for one trigger point, consuming one-shot ones."""
        out: List[FaultAction] = []
        with self._lock:
            for action in self.actions:
                if action.matches(host, round_index, kind, ordinal, when):
                    action.fired = True
                    out.append(action)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({len(self.actions)} actions)"


# ---------------------------------------------------------------------------
# Per-site dispatch logs (the replayable checkpoint)
# ---------------------------------------------------------------------------


class SiteDispatchRecord:
    """Everything one site dispatch needs to be re-executed elsewhere.

    ``state`` is the *exact* object the original frame carried in its state
    slot — an epoch token ``(tag, epoch, writes, deleted)`` with the
    coordinator's write overlay, or a materialised dict.  Token epochs are
    rewritten positionally during replay (the replay target assigns its own
    monotonic epochs), which is sound because record *i*'s token always
    references the state produced by record *i-1*.  ``rng_bytes`` pins the
    RNG stream at dispatch time (the live generator object advances as the
    task runs), so replay carries the same stream over.
    """

    __slots__ = (
        "round_index",
        "site_id",
        "fn",
        "args",
        "kwargs",
        "rng_bytes",
        "inbox",
        "state",
        "traced",
        "wire",
        "tracer",
    )

    def __init__(
        self,
        round_index: int,
        site_id: int,
        fn: Any,
        args: Any,
        kwargs: Any,
        rng_bytes: bytes,
        inbox: Any,
        state: Any,
        traced: bool,
        wire: Any,
        tracer: Any,
    ) -> None:
        self.round_index = round_index
        self.site_id = site_id
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.rng_bytes = rng_bytes
        self.inbox = inbox
        self.state = state
        self.traced = traced
        self.wire = wire
        self.tracer = tracer


class SiteLog:
    """The coordinator-side dispatch log for one ``resident_key``.

    ``records`` accumulate for the life of the key (replay always starts at
    record 0 — the first record necessarily ships the full state dict plus
    the sticky half, so a fresh host can be rebuilt from nothing).
    ``digests[i]`` is the ``(epoch, sizes)`` state digest record *i* produced
    (``None`` while in flight), the ground truth replayed state is verified
    against.  ``location`` is the host currently holding the key's resident
    state; ``pending`` is the in-flight ``(record_index, entry)`` whose
    original future a replay must resolve.  ``lock`` serialises replay
    against new dispatches for the same key.
    """

    __slots__ = (
        "key",
        "site_id",
        "sticky",
        "job",
        "records",
        "digests",
        "lock",
        "location",
        "pending",
        "epoch",
    )

    def __init__(self, key: Any, site_id: int, sticky: Any, job: str = "") -> None:
        self.key = key
        self.site_id = site_id
        self.sticky = sticky
        #: Job namespace the key belongs to (``""`` for direct backend use);
        #: replay frames re-encode against the same per-job payload cache and
        #: slot map the original dispatches used.
        self.job = job
        self.records: List[SiteDispatchRecord] = []
        self.digests: List[Optional[Tuple[int, Dict[str, int]]]] = []
        self.lock = threading.RLock()
        self.location: Optional[int] = None
        self.pending: Optional[Tuple[int, Any]] = None
        self.epoch = 0

    def append(self, record: SiteDispatchRecord) -> int:
        """Add a dispatch record; returns its index."""
        self.records.append(record)
        self.digests.append(None)
        return len(self.records) - 1

    def note_result(self, index: int, epoch: int, sizes: Dict[str, int]) -> None:
        """Commit record ``index``'s state digest (called as its result lands)."""
        self.digests[index] = (int(epoch), dict(sizes))
        self.epoch = int(epoch)
        pending = self.pending
        if pending is not None and pending[0] == index:
            self.pending = None


__all__ = [
    "DeadHostError",
    "FAIL_FAST",
    "FAULT_PLAN_ENV",
    "FaultAction",
    "FaultPlan",
    "HEARTBEAT_INTERVAL_ENV",
    "RetryPolicy",
    "SiteDispatchRecord",
    "SiteLog",
    "resolve_retry_policy",
]
