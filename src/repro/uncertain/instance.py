"""A collection of uncertain nodes over a common ground metric."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.compressed_graph import CompressedGraph
from repro.uncertain.collapse import build_compressed_graph
from repro.uncertain.nodes import UncertainNode
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class UncertainInstance:
    """Uncertain clustering input: nodes ``A`` over a ground point set ``P``.

    Attributes
    ----------
    ground_metric:
        Metric over ``P`` (points addressed by index).
    nodes:
        One :class:`UncertainNode` per input node ``j``.
    """

    ground_metric: MetricSpace
    nodes: List[UncertainNode]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("instance needs at least one node")
        n_ground = len(self.ground_metric)
        for node in self.nodes:
            if node.support.max() >= n_ground or node.support.min() < 0:
                raise ValueError("node support refers to points outside the ground metric")

    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Number of uncertain nodes."""
        return len(self.nodes)

    @property
    def n_ground_points(self) -> int:
        """Size of the ground point set ``P``."""
        return len(self.ground_metric)

    def node_subset(self, indices: Sequence[int]) -> "UncertainInstance":
        """Instance restricted to the given node indices (shares the ground metric)."""
        indices = np.asarray(indices, dtype=int)
        return UncertainInstance(
            ground_metric=self.ground_metric,
            nodes=[self.nodes[int(i)] for i in indices],
            metadata=dict(self.metadata),
        )

    def encoding_words(self, words_per_point: Optional[int] = None) -> float:
        """Total words needed to transmit every node's distribution (``n * I``)."""
        wpp = self.ground_metric.words_per_point if words_per_point is None else words_per_point
        return float(sum(node.encoding_words(wpp) for node in self.nodes))

    def max_node_words(self, words_per_point: Optional[int] = None) -> float:
        """The paper's per-node encoding size ``I`` (maximum over nodes)."""
        wpp = self.ground_metric.words_per_point if words_per_point is None else words_per_point
        return float(max(node.encoding_words(wpp) for node in self.nodes))

    # ------------------------------------------------------------------
    # Expected-cost matrices
    # ------------------------------------------------------------------

    def expected_cost_matrix(
        self,
        node_indices: Sequence[int],
        point_indices: Sequence[int],
        objective: str = "median",
        tau: Optional[float] = None,
    ) -> np.ndarray:
        """Node-by-point expected assignment costs.

        ``objective="median"`` gives ``d_hat(j, u) = E[d(sigma(j), u)]``,
        ``"means"`` gives ``E[d^2]`` and ``"center"`` also uses ``d_hat`` (the
        per-point objective (2) is a max of expectations).  Passing ``tau``
        switches to the truncated expectation ``rho_tau`` regardless of
        objective (used by Algorithm 4).
        """
        node_indices = np.asarray(node_indices, dtype=int)
        point_indices = np.asarray(point_indices, dtype=int)
        out = np.empty((node_indices.size, point_indices.size), dtype=float)
        objective = str(objective).lower()
        for row, j in enumerate(node_indices):
            node = self.nodes[int(j)]
            if tau is not None:
                out[row] = node.expected_truncated_distances(self.ground_metric, point_indices, tau)
            elif objective == "means":
                out[row] = node.expected_sq_distances(self.ground_metric, point_indices)
            else:
                out[row] = node.expected_distances(self.ground_metric, point_indices)
        return out

    def support_union(self, node_indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Union of the support points of the selected nodes (``P(Z)`` in the paper)."""
        if node_indices is None:
            node_indices = range(self.n_nodes)
        supports = [self.nodes[int(j)].support for j in node_indices]
        return np.unique(np.concatenate(supports)) if supports else np.empty(0, dtype=int)

    def compressed_graph(
        self, objective: str = "median", candidates: Optional[Sequence[int]] = None
    ) -> CompressedGraph:
        """The Definition 5.2 compressed graph over all nodes."""
        return build_compressed_graph(self.nodes, self.ground_metric, objective, candidates)

    # ------------------------------------------------------------------
    # Realizations
    # ------------------------------------------------------------------

    def sample_realization(self, rng: RngLike = None) -> np.ndarray:
        """One joint realization ``sigma``: a ground-point index per node."""
        generator = ensure_rng(rng)
        return np.asarray([node.sample(generator) for node in self.nodes], dtype=int)

    def spread(self) -> float:
        """Aspect ratio ``Delta`` of the ground point set (used by Algorithm 4)."""
        return self.ground_metric.spread()


__all__ = ["UncertainInstance"]
