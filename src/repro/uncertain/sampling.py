"""Objective evaluation for uncertain clusterings.

The median, means and center-pp objectives (Equations (1) and (2) of the
paper) are sums / maxima of *per-node expectations*, so they can be computed
exactly from the nodes' distributions.  The center-g objective (Equation (3))
is an expectation of a maximum over the joint realization and does not
decompose; it is estimated by Monte-Carlo sampling of joint realizations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.uncertain.instance import UncertainInstance
from repro.utils.rng import RngLike, ensure_rng


def _served_nodes(instance: UncertainInstance, assignment: Dict[int, int]) -> np.ndarray:
    nodes = np.asarray(sorted(assignment.keys()), dtype=int)
    if nodes.size and (nodes.min() < 0 or nodes.max() >= instance.n_nodes):
        raise ValueError("assignment refers to nodes outside the instance")
    return nodes


def exact_assigned_cost(
    instance: UncertainInstance,
    assignment: Dict[int, int],
    objective: str = "median",
) -> float:
    """Exact cost of an assigned clustering for median / means / center-pp.

    Parameters
    ----------
    instance:
        The uncertain instance.
    assignment:
        Mapping ``node index -> ground point index`` (the paper's ``pi``)
        covering exactly the non-outlier nodes.
    objective:
        ``"median"``, ``"means"`` or ``"center"`` (interpreted as center-pp).
    """
    objective = str(objective).lower()
    nodes = _served_nodes(instance, assignment)
    if nodes.size == 0:
        return 0.0
    per_node = np.empty(nodes.size, dtype=float)
    for row, j in enumerate(nodes):
        node = instance.nodes[int(j)]
        target = [int(assignment[int(j)])]
        if objective == "means":
            per_node[row] = node.expected_sq_distances(instance.ground_metric, target)[0]
        else:
            per_node[row] = node.expected_distances(instance.ground_metric, target)[0]
    if objective == "center":
        return float(per_node.max())
    return float(per_node.sum())


def sample_realizations(
    instance: UncertainInstance, n_samples: int, rng: RngLike = None
) -> np.ndarray:
    """``(n_samples, n_nodes)`` matrix of joint realizations (ground-point indices)."""
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    generator = ensure_rng(rng)
    out = np.empty((n_samples, instance.n_nodes), dtype=int)
    for j, node in enumerate(instance.nodes):
        out[:, j] = node.sample(generator, size=n_samples)
    return out


def estimate_center_g_cost(
    instance: UncertainInstance,
    assignment: Dict[int, int],
    n_samples: int = 200,
    rng: RngLike = None,
    realizations: Optional[np.ndarray] = None,
) -> float:
    """Monte-Carlo estimate of the center-g objective ``E[max_j d(sigma(j), pi(j))]``.

    Parameters
    ----------
    instance, assignment:
        As in :func:`exact_assigned_cost`; outlier nodes are simply absent
        from ``assignment``.
    n_samples:
        Number of joint realizations sampled (ignored when ``realizations``
        is given).
    realizations:
        Optional pre-sampled ``(n_samples, n_nodes)`` realization matrix so
        that several candidate solutions can be compared on identical
        randomness (paired estimation).
    """
    nodes = _served_nodes(instance, assignment)
    if nodes.size == 0:
        return 0.0
    if realizations is None:
        realizations = sample_realizations(instance, n_samples, rng)
    if realizations.shape[1] != instance.n_nodes:
        raise ValueError("realizations must have one column per node of the instance")

    centers = np.asarray([int(assignment[int(j)]) for j in nodes], dtype=int)
    maxima = np.zeros(realizations.shape[0], dtype=float)
    metric = instance.ground_metric
    for col, (j, center) in enumerate(zip(nodes, centers)):
        realized = realizations[:, int(j)]
        # Distance from each realization of node j to its fixed center.
        unique_points, inverse = np.unique(realized, return_inverse=True)
        dists = metric.pairwise(unique_points, [center])[:, 0]
        np.maximum(maxima, dists[inverse], out=maxima)
        _ = col
    return float(maxima.mean())


__all__ = ["exact_assigned_cost", "sample_realizations", "estimate_center_g_cost"]
