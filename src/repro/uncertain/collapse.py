"""1-median / 1-mean collapse of uncertain nodes (Definition 5.1).

``y_j = argmin_{y in P} E[d(sigma(j), y)]`` is the best single point summary
of node ``j`` under the median objective; ``y'_j`` is the analogue for the
squared distance.  The collapse cost ``l_j`` is the expected distance to that
summary — the quantity carried on the "tentacle" edges of the compressed
graph (Definition 5.2).

The paper's ``T`` parameter is the time to compute one such 1-median; here it
is ``O(m * |candidates|)`` distance evaluations per node, vectorised through
the metric's ``pairwise``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.compressed_graph import CompressedGraph
from repro.uncertain.nodes import UncertainNode


def one_median(
    node: UncertainNode,
    metric: MetricSpace,
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[int, float]:
    """Best ground point under expected distance: ``(y_j, l_j)``.

    Parameters
    ----------
    node:
        The uncertain node.
    metric:
        Metric over the ground set ``P``.
    candidates:
        Candidate ground points for ``y_j``.  Defaults to the node's own
        support, which is a 2-approximate choice (by the triangle inequality
        the best support point is within twice the best overall point) and
        keeps the per-node cost at ``O(m^2)``; pass ``range(len(metric))`` to
        search all of ``P`` exactly.
    """
    cand = node.support if candidates is None else np.asarray(candidates, dtype=int)
    costs = node.expected_distances(metric, cand)
    best = int(np.argmin(costs))
    return int(cand[best]), float(costs[best])


def one_mean(
    node: UncertainNode,
    metric: MetricSpace,
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[int, float]:
    """Best ground point under expected *squared* distance: ``(y'_j, E[d^2])``."""
    cand = node.support if candidates is None else np.asarray(candidates, dtype=int)
    costs = node.expected_sq_distances(metric, cand)
    best = int(np.argmin(costs))
    return int(cand[best]), float(costs[best])


def collapse_nodes(
    nodes: Sequence[UncertainNode],
    metric: MetricSpace,
    objective: str = "median",
    candidates: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse every node to its 1-median (or 1-mean for means).

    Returns ``(anchor_indices, collapse_costs)`` with one entry per node.
    For the center objectives the 1-median is used, as in the paper.
    """
    objective = str(objective).lower()
    collapse = one_mean if objective == "means" else one_median
    anchors = np.empty(len(nodes), dtype=int)
    costs = np.empty(len(nodes), dtype=float)
    for j, node in enumerate(nodes):
        anchors[j], costs[j] = collapse(node, metric, candidates)
    return anchors, costs


def build_compressed_graph(
    nodes: Sequence[UncertainNode],
    metric: MetricSpace,
    objective: str = "median",
    candidates: Optional[Sequence[int]] = None,
) -> CompressedGraph:
    """The Definition 5.2 compressed graph for a collection of nodes."""
    anchors, costs = collapse_nodes(nodes, metric, objective, candidates)
    return CompressedGraph(ground_metric=metric, anchor_indices=anchors, collapse_costs=costs)


__all__ = ["one_median", "one_mean", "collapse_nodes", "build_compressed_graph"]
