"""Uncertain-data substrate (Section 5 of the paper).

An *uncertain node* is an independent discrete distribution over a finite
ground point set ``P``; the clustering objectives are expectations over the
joint realization of all nodes (Definition 1.2).  This package provides

* :class:`UncertainNode` — a discrete distribution with vectorised expected
  (squared / truncated) distance computations,
* :class:`UncertainInstance` — a collection of nodes over one ground metric,
  with realization sampling and exact objective evaluation where the paper's
  objective is a sum/max of per-node expectations,
* 1-median / 1-mean collapse (Definition 5.1) and the compressed-graph
  construction feeding :class:`repro.metrics.CompressedGraph`,
* Monte-Carlo estimation of the center-g objective ``E[max_j d(sigma(j), pi(j))]``,
  which is the one objective that does not decompose per node.
"""

from repro.uncertain.nodes import UncertainNode
from repro.uncertain.instance import UncertainInstance
from repro.uncertain.collapse import one_median, one_mean, collapse_nodes, build_compressed_graph
from repro.uncertain.sampling import (
    exact_assigned_cost,
    estimate_center_g_cost,
    sample_realizations,
)

__all__ = [
    "UncertainNode",
    "UncertainInstance",
    "one_median",
    "one_mean",
    "collapse_nodes",
    "build_compressed_graph",
    "exact_assigned_cost",
    "estimate_center_g_cost",
    "sample_realizations",
]
