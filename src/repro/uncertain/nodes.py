"""Discrete uncertain nodes over a finite ground point set ``P``."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.metrics.base import MetricSpace
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability_vector


@dataclass
class UncertainNode:
    """A node ``j`` whose realization ``sigma(j)`` follows a discrete distribution.

    Attributes
    ----------
    support:
        Ground-point indices with positive probability.
    probabilities:
        Probability of each support point (normalised to sum to one).
    name:
        Optional identifier used by reports.
    """

    support: np.ndarray
    probabilities: np.ndarray
    name: Optional[str] = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.support = np.asarray(self.support, dtype=int)
        self.probabilities = check_probability_vector(self.probabilities, "probabilities")
        if self.support.ndim != 1:
            raise ValueError(f"support must be one-dimensional, got shape {self.support.shape}")
        if self.support.shape != self.probabilities.shape:
            raise ValueError(
                "support and probabilities must have the same length, got "
                f"{self.support.shape} vs {self.probabilities.shape}"
            )
        if np.unique(self.support).size != self.support.size:
            raise ValueError("support points must be distinct")

    # ------------------------------------------------------------------

    @property
    def support_size(self) -> int:
        """Number of support points ``m`` of the distribution."""
        return int(self.support.size)

    def encoding_words(self, words_per_point: int = 1) -> float:
        """The paper's ``I``: words needed to transmit the node's distribution.

        Each support point costs ``B`` words (its coordinates / identifier)
        plus one word for its probability.
        """
        return float(self.support_size * (words_per_point + 1))

    # ------------------------------------------------------------------
    # Expected distances
    # ------------------------------------------------------------------

    def expected_distances(
        self, metric: MetricSpace, points: Sequence[int]
    ) -> np.ndarray:
        """``d_hat(j, u) = E[d(sigma(j), u)]`` for every ``u`` in ``points``."""
        block = metric.pairwise(self.support, points)
        return self.probabilities @ block

    def expected_sq_distances(
        self, metric: MetricSpace, points: Sequence[int]
    ) -> np.ndarray:
        """``E[d^2(sigma(j), u)]`` for every ``u`` in ``points`` (means objective)."""
        block = metric.pairwise(self.support, points)
        return self.probabilities @ (block * block)

    def expected_truncated_distances(
        self, metric: MetricSpace, points: Sequence[int], tau: float
    ) -> np.ndarray:
        """``rho_tau(j, u) = E[max{d(sigma(j), u) - tau, 0}]`` (Definition 5.7)."""
        if tau < 0:
            raise ValueError(f"tau must be non-negative, got {tau}")
        block = metric.pairwise(self.support, points)
        return self.probabilities @ np.maximum(block - tau, 0.0)

    def expected_distance(self, metric: MetricSpace, point: int) -> float:
        """``E[d(sigma(j), u)]`` for a single ground point."""
        return float(self.expected_distances(metric, [point])[0])

    # ------------------------------------------------------------------
    # Sampling and moments
    # ------------------------------------------------------------------

    def sample(self, rng: RngLike = None, size: Optional[int] = None):
        """Sample realizations ``sigma(j)`` (ground-point indices)."""
        generator = ensure_rng(rng)
        drawn = generator.choice(self.support, size=size, p=self.probabilities)
        return drawn if size is not None else int(drawn)

    def mean_point(self, metric: MetricSpace) -> Optional[np.ndarray]:
        """Probability-weighted mean of the support coordinates (Euclidean only)."""
        points = getattr(metric, "points", None)
        if points is None:
            return None
        return self.probabilities @ points[self.support]

    @classmethod
    def deterministic(cls, point: int, name: Optional[str] = None) -> "UncertainNode":
        """A node that always realises to a single ground point."""
        return cls(support=np.asarray([point]), probabilities=np.asarray([1.0]), name=name)

    @classmethod
    def uniform_over(cls, points: Sequence[int], name: Optional[str] = None) -> "UncertainNode":
        """A node uniform over the given ground points."""
        points = np.asarray(points, dtype=int)
        return cls(
            support=points,
            probabilities=np.full(points.size, 1.0 / points.size),
            name=name,
        )


__all__ = ["UncertainNode"]
