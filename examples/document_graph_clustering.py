"""Clustering over a similarity graph: the distance oracle need not be Euclidean.

The paper's framework only assumes an oracle distance function d(.,.) — the
introduction explicitly mentions documents and images compared through a
kernel.  This example builds a small "document similarity" world as a
weighted graph (documents = nodes, edge weights = dissimilarity between
related documents), uses shortest-path distances as the metric, and runs the
distributed (k, t)-median and (k, t)-center protocols on it.

A handful of "spam" documents sit far from everything else; the partial
objective ignores them instead of letting them drag a center away.

Run with:  python examples/document_graph_clustering.py
"""

import networkx as nx
import numpy as np

from repro.analysis import evaluate_centers, format_table
from repro.core import distributed_partial_center, distributed_partial_median
from repro.distributed import DistributedInstance, partition_round_robin
from repro.metrics import GraphMetric


def build_document_graph(rng: np.random.Generator) -> nx.Graph:
    """Three topical communities of documents plus a chain of spam documents."""
    graph = nx.Graph()
    node = 0
    for _topic in range(3):
        members = list(range(node, node + 25))
        # Densely connect documents on the same topic with small dissimilarity.
        for i in members:
            for j in members:
                if i < j and rng.random() < 0.35:
                    graph.add_edge(i, j, weight=float(rng.uniform(0.2, 1.0)))
        nx.add_path(graph, members, weight=0.8)
        node += 25
    # Cross-topic bridges (documents citing across topics) are longer.
    graph.add_edge(3, 28, weight=6.0)
    graph.add_edge(30, 55, weight=6.0)
    # Spam: a chain of documents similar only to each other, far from everything.
    previous = 10
    for _ in range(8):
        graph.add_edge(previous, node, weight=15.0)
        previous = node
        node += 1
    return graph


def main() -> None:
    rng = np.random.default_rng(13)
    graph = build_document_graph(rng)
    metric = GraphMetric(graph)          # shortest-path distances, B = 1 word per id
    n = len(metric)
    spam = set(range(n - 8, n))

    k, t, s = 3, 8, 3
    shards = partition_round_robin(n, s)
    print(f"{n} documents on a similarity graph, {s} sites, k={k}, t={t} (8 spam documents)\n")

    rows = []
    for objective, runner in (
        ("median", lambda inst: distributed_partial_median(inst, epsilon=0.5, rng=2)),
        ("center", lambda inst: distributed_partial_center(inst, rng=2)),
    ):
        instance = DistributedInstance.from_partition(metric, shards, k, t, objective)
        result = runner(instance)
        realized = evaluate_centers(metric, result.centers, result.outlier_budget, objective=objective)
        caught = len(spam & set(result.outliers.tolist())) if result.outliers is not None else 0
        rows.append(
            {
                "objective": objective,
                "centers": ", ".join(str(c) for c in sorted(result.centers.tolist())),
                "realized_cost": realized.cost,
                "words": result.total_words,
                "spam_ignored": f"{caught}/8",
            }
        )
    print(format_table(rows, title="Distributed partial clustering on a non-Euclidean (graph) metric"))
    print("\nCenters are document ids; every chosen center lies inside a topical community,")
    print("and the excluded documents are (mostly) the planted spam chain.")


if __name__ == "__main__":
    main()
