"""Sensor-network scenario: faulty sensors concentrated on a few gateways.

A common motivation for *partial* clustering in a distributed setting: a
fleet of sensors reports positions/feature vectors to regional gateways
(sites), most readings are clean, but a batch of faulty sensors produces
garbage — and, crucially, the faulty batch is not spread evenly, it sits
behind one or two gateways.  Splitting the outlier budget uniformly across
gateways then fails, which is exactly the problem the paper's convex-hull
budget allocation solves.

The script compares, on such an adversarial placement:

* Algorithm 1 (2 rounds, budget allocated by rank selection),
* the 1-round baseline (every gateway ships its full budget),
* the send-everything baseline,

reporting realized cost, communication and which faulty sensors were caught.

Run with:  python examples/sensor_network_outliers.py
"""

import numpy as np

from repro.analysis import compare_results, format_table
from repro.baselines import centralized_reference, one_round_protocol, send_all_protocol
from repro.core import distributed_partial_median
from repro.data import gaussian_mixture_with_outliers
from repro.distributed import DistributedInstance, partition_outliers_concentrated


def main() -> None:
    # 5 "regions" of sensors + 48 faulty units, all attached to gateway 0.
    workload = gaussian_mixture_with_outliers(
        n_inliers=900, n_outliers=48, n_clusters=5, separation=15.0, cluster_std=1.2, rng=21
    )
    metric = workload.to_metric()
    k, t, n_gateways = 5, 48, 6

    shards = partition_outliers_concentrated(
        workload.outlier_mask, n_gateways, n_outlier_sites=1, rng=21
    )
    instance = DistributedInstance.from_partition(metric, shards, k, t, "median")

    runs = {
        "algorithm1 (2 rounds)": distributed_partial_median(instance, epsilon=0.5, rng=3),
        "one-round (t per gateway)": one_round_protocol(instance, epsilon=0.5, rng=3),
        "send everything": send_all_protocol(instance, rng=3),
    }
    reference = centralized_reference(metric, k, t, objective="median", rng=3)
    rows = compare_results(
        metric,
        runs,
        reference=reference,
        true_outliers=np.flatnonzero(workload.outlier_mask),
    )
    print(format_table(
        rows,
        ["label", "realized_cost", "approx_ratio", "total_words", "rounds", "outlier_recall"],
        title="Faulty sensors concentrated behind one gateway (s=6, k=5, t=48)",
    ))

    alg1 = runs["algorithm1 (2 rounds)"]
    print("\nPer-gateway outlier budget chosen by the coordinator (Algorithm 1):")
    for gateway, budget in enumerate(alg1.metadata["t_allocated"]):
        n_faulty = int(np.sum(workload.outlier_mask[shards[gateway]]))
        print(f"  gateway {gateway}: allocated {budget:3d}   (actually holds {n_faulty} faulty sensors)")


if __name__ == "__main__":
    main()
