"""How communication scales with the number of sites: Õ(sk+t) vs Õ(sk+st).

The headline quantitative claim of the paper is the removal of the ``s * t``
term from the communication cost of distributed partial clustering.  This
script sweeps the number of sites on a fixed workload and prints the words
transmitted by

* the 1-round baseline (every site ships its full outlier budget ``t``),
* Algorithm 1 (the 2-round protocol with the convex-hull budget allocation),
* the Theorem 3.8 variant (outliers never shipped at all),

together with the realized solution cost, so the table shows the separation
growing linearly in ``s`` while quality stays flat.

Run with:  python examples/communication_vs_sites.py
"""

from repro.analysis import evaluate_centers, format_table
from repro.baselines import one_round_protocol
from repro.core import distributed_partial_median, distributed_partial_median_no_shipping
from repro.data import gaussian_mixture_with_outliers
from repro.distributed import DistributedInstance, partition_balanced


def main() -> None:
    workload = gaussian_mixture_with_outliers(
        n_inliers=1500, n_outliers=80, n_clusters=4, separation=14.0, rng=17
    )
    metric = workload.to_metric()
    k, t = 4, 80

    rows = []
    for s in (2, 4, 8, 16, 32):
        shards = partition_balanced(workload.n_points, s, rng=17)
        instance = DistributedInstance.from_partition(metric, shards, k, t, "median")

        one_round = one_round_protocol(instance, epsilon=0.5, rng=1)
        alg1 = distributed_partial_median(instance, epsilon=0.5, rng=1)
        no_ship = distributed_partial_median_no_shipping(instance, epsilon=0.5, delta=0.5, rng=1)

        rows.append(
            {
                "sites": s,
                "one_round_words": one_round.total_words,
                "alg1_words": alg1.total_words,
                "no_ship_words": no_ship.total_words,
                "saving (1-round / alg1)": one_round.total_words / alg1.total_words,
                "alg1_cost": evaluate_centers(
                    metric, alg1.centers, alg1.outlier_budget, objective="median"
                ).cost,
                "one_round_cost": evaluate_centers(
                    metric, one_round.centers, one_round.outlier_budget, objective="median"
                ).cost,
            }
        )

    print(format_table(
        rows,
        title=f"Communication vs number of sites (n={workload.n_points}, k={k}, t={t})",
    ))
    print("\nThe 1-round protocol pays ~ s*t*B words for shipped outliers; Algorithm 1's")
    print("uplink stays ~ (sk + t)*B, so the ratio in the 5th column grows with s.")


if __name__ == "__main__":
    main()
