"""Using the distributed algorithm as a *centralized* speed-up (Theorem 3.10).

Even with all the data on one machine, the (k, t)-median algorithms with
provable guarantees are quadratic (or worse) in n.  Theorem 3.10 observes
that simulating the distributed protocol sequentially — split into ~n^(2/3)
pieces, precluster each piece, finish on the ~sk + t surviving weighted
representatives — breaks the quadratic barrier.

This script measures wall-clock time of a quadratic-style direct solver and
of the sequential simulation over a range of n, printing the crossover.  The
solvers are configured identically (every facility considered for insertion)
so the comparison isolates the algorithmic structure, not solver tuning.

Run with:  python examples/subquadratic_speedup.py
"""

import time

import numpy as np

from repro.analysis import evaluate_centers, format_table
from repro.core import subquadratic_partial_clustering
from repro.data import gaussian_mixture_with_outliers
from repro.metrics import build_cost_matrix
from repro.sequential import local_search_partial

QUADRATIC_SOLVER = {"sample_size": 10**9, "max_iter": 4}  # evaluate every facility


def main() -> None:
    k = 3
    rows = []
    for n in (300, 600, 1200, 2400):
        t = int(np.sqrt(n))
        workload = gaussian_mixture_with_outliers(
            n_inliers=n - t, n_outliers=t, n_clusters=k, separation=14.0, rng=n
        )
        metric = workload.to_metric()

        start = time.perf_counter()
        costs = build_cost_matrix(metric, range(n), range(n), "median")
        direct = local_search_partial(costs, k, t, rng=1, **QUADRATIC_SOLVER)
        direct_seconds = time.perf_counter() - start

        sim = subquadratic_partial_clustering(
            metric, k, t, rng=1,
            local_solver_kwargs=QUADRATIC_SOLVER,
            coordinator_solver_kwargs=QUADRATIC_SOLVER,
        )
        sim_cost = evaluate_centers(metric, sim.centers, sim.outlier_budget, objective="median").cost

        rows.append(
            {
                "n": n,
                "t": t,
                "direct_seconds": direct_seconds,
                "simulated_seconds": sim.wall_time,
                "speedup": direct_seconds / sim.wall_time,
                "pieces": sim.n_pieces,
                "direct_cost": direct.cost,
                "simulated_cost": sim_cost,
            }
        )

    print(format_table(rows, title="Theorem 3.10: direct quadratic solve vs sequential simulation"))
    print("\nThe simulated solver's time grows ~n^(4/3) versus ~n^2 for the direct solve,")
    print("so the speedup column keeps growing with n while the costs stay comparable.")


if __name__ == "__main__":
    main()
