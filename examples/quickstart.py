"""Quickstart: distributed partial k-median in a dozen lines.

Generates a small point cloud with three clusters and a handful of wild
outliers, runs the 2-round distributed (k, t)-median protocol (Algorithm 1 of
the paper) across four simulated sites, and prints what came back: the chosen
centers, how much was communicated, and how the solution compares with a
single-machine reference.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import partial_kcenter, partial_kmedian
from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference
from repro.data import gaussian_mixture_with_outliers


def main() -> None:
    # A workload with planted structure: 3 clusters, 30 far-away outliers.
    workload = gaussian_mixture_with_outliers(
        n_inliers=600, n_outliers=30, n_clusters=3, separation=12.0, rng=7
    )
    k, t = 3, 30

    # One call: build the metric, split the points over 4 sites, run the
    # 2-round protocol with outlier relaxation epsilon = 0.5.
    result = partial_kmedian(workload.points, k=k, t=t, n_sites=4, epsilon=0.5, seed=7)

    metric = workload.to_metric()
    realized = evaluate_centers(metric, result.centers, result.outlier_budget, objective="median")
    reference = centralized_reference(metric, k, t, objective="median", rng=7)

    print("distributed (k, t)-median — Algorithm 1")
    print(f"  points / sites          : {workload.n_points} / 4")
    print(f"  centers returned        : {result.centers.tolist()}")
    print(f"  rounds                  : {result.rounds}")
    print(f"  words communicated      : {result.total_words:.0f} "
          f"(send-everything would be {workload.n_points * 2})")
    print(f"  outliers excluded       : {len(result.outliers)} (budget {result.outlier_budget:.0f})")
    print(f"  realized cost           : {realized.cost:.1f}")
    print(f"  centralized reference   : {reference.cost:.1f}")
    print(f"  measured approx. ratio  : {realized.cost / reference.cost:.2f}")

    planted = set(np.flatnonzero(workload.outlier_mask).tolist())
    recovered = len(planted & set(result.outliers.tolist()))
    print(f"  planted outliers found  : {recovered}/{len(planted)}")

    choosing_a_backend(workload.points, k, t)
    running_on_a_cluster_backend(workload.points, k, t)
    event_loop_coordinator_and_the_cluster_service(workload.points, k, t)
    fault_tolerance_and_recovery(workload.points, k, t)
    wire_codecs_and_content_addressed_payloads(workload.points, k, t)
    memory_budgets_and_out_of_core_shards(workload.points, k, t)
    fused_plans_and_prefetch(workload.points, k, t)
    observability(workload.points, k, t)
    live_telemetry_and_run_history(workload.points, k, t)


def choosing_a_backend(points, k, t) -> None:
    """Choosing a backend.

    Site-local computation is embarrassingly parallel, so every protocol
    accepts ``backend=`` to pick where it runs:

    * ``"serial"`` (default) — one Python loop; zero overhead, right for
      small instances and for debugging.
    * ``"thread"`` — a shared-memory thread pool; wins when numpy/BLAS
      kernels dominate site time (they release the GIL).
    * ``"process"`` — worker processes; true parallelism for the
      Python-heavy local search, plus honest payload materialisation
      (everything crossing the boundary is pickled).  Prefer this at
      large ``n_i`` on multi-core machines.

    Results are bit-identical across backends for a fixed seed — same
    centers, same cost, same communication words — so the choice is purely
    about wall-clock.  To amortise pool startup across many runs, pass an
    instance instead of a name::

        from repro.runtime import ProcessPoolBackend
        with ProcessPoolBackend(max_workers=4) as pool:
            for seed in range(10):
                partial_kmedian(points, k=3, t=30, seed=seed, backend=pool)
    """
    import time

    print("\nchoosing a backend (same seed => identical results)")
    for backend in ("serial", "thread", "process"):
        start = time.perf_counter()
        result = partial_kmedian(points, k=k, t=t, n_sites=4, seed=7, backend=backend)
        wall = time.perf_counter() - start
        print(
            f"  backend={backend:<8}: cost {result.cost:9.1f}, "
            f"words {result.total_words:6.0f}, wall {wall:.2f}s"
        )


def running_on_a_cluster_backend(points, k, t) -> None:
    """Running on a cluster backend.

    ``backend="cluster:3"`` runs every site on its own long-lived runner
    *subprocess* — one per simulated host, started as a fresh interpreter —
    and ships tasks and payloads over real length-prefixed socket
    connections.  That buys two things the in-process backends cannot give:

    * **distributed memory** — a runner inherits nothing, so everything a
      site computes on demonstrably arrived through its socket, and a
      site's shard + local metric stay *resident* on its runner across
      rounds (shipped once per run, never re-pickled every round);
    * **wire-level byte accounting** — the ledger reports the exact bytes
      every frame occupied next to the semantic word counts::

          result = partial_kmedian(points, k=3, t=30, backend="cluster:3")
          summary = result.ledger.summary()
          summary["total_words"]   # identical to backend="serial"
          summary["total_bytes"]   # > 0: real wire traffic, per round too

      Each uplink message also carries ``n_bytes`` — its payload's own
      serialized size — so bytes-per-word ratios can be read per message
      kind, which is what makes the paper's word counts comparable to
      byte-level transmission schemes.

    ``async_rounds=True`` adds async round scheduling on any backend: site
    tasks are dispatched as futures and the coordinator consumes each
    completed site (allocation marginals, ledger charges) while the others
    are still computing — site compute overlaps coordinator allocation,
    the same latency-hiding idea as the tile prefetcher one level up.

    Resident state and state digests
    --------------------------------
    Everything that *lives* at a site stays at its site.  The immutable
    half — shard + local metric — is shipped once per run; the **mutable**
    half gets the same treatment: after a site task completes, its
    ``ctx.state`` (for kmedian, the precluster with its cached
    ``n_i x n_i`` cost matrix) stays resident on the runner, and the result
    frame carries only a *digest* — the entry keys, each entry's pickled
    size, and a state epoch.  The next round's dispatch ships an epoch
    token instead of re-pickling the dict, so round >= 2 dispatches cost
    kilobytes where they used to cost the whole precluster.

    On the coordinator, ``Site.state`` becomes a lazy
    :class:`repro.runtime.RemoteStateProxy`: reading an entry faults
    exactly that entry over the wire (recorded as ``state_pull_*`` frames
    in the wire ledger), writes ride along with the next dispatch token,
    ``state.pull_state()`` materialises everything (detaching the proxy
    from the wire), ``state.evict()`` drops the local read cache, and
    ``ClusterBackend.clear_resident()`` pulls live proxies before dropping
    both resident halves — so even a mid-run clear stays bit-identical.
    In-process backends still hand the state dict back directly; protocol
    results are identical either way.

    Results are bit-identical to ``"serial"`` in every configuration: same
    centers, same cost, same word ledger.  Only ``total_bytes`` (and
    wall-clock) differ.
    """
    print("\ncluster backend (same seed => identical results, now with bytes)")
    serial = partial_kmedian(points, k=k, t=t, n_sites=3, seed=7)
    clustered = partial_kmedian(
        points, k=k, t=t, n_sites=3, seed=7, backend="cluster:3", async_rounds=True
    )
    assert clustered.cost == serial.cost
    assert clustered.total_words == serial.total_words
    for label, result in (("serial", serial), ("cluster:3", clustered)):
        summary = result.ledger.summary()
        print(
            f"  backend={label:<10}: cost {result.cost:9.1f}, "
            f"words {summary['total_words']:6.0f}, bytes {summary['total_bytes']:8d}"
        )
    # Resident state in numbers: round 2's dispatch is an epoch token plus
    # the allocation inbox — the preclusters never left their runners.
    dispatch = {}
    for rec in clustered.ledger.wire.records:
        if rec.kind == "site_dispatch":
            dispatch[rec.round_index] = dispatch.get(rec.round_index, 0) + rec.n_bytes
    print(
        f"  dispatch bytes by round: round1={dispatch.get(1, 0)} (shard+metric), "
        f"round2={dispatch.get(2, 0)} (state epoch token)"
    )


def event_loop_coordinator_and_the_cluster_service(points, k, t) -> None:
    """Event-loop coordinator and the cluster service.

    Under the hood the coordinator no longer runs reader/sender threads
    per host: one selector-based event loop (``repro.cluster.loop``)
    multiplexes every runner channel through non-blocking
    ``FrameChannel`` state machines, so a 3-host and a 300-host pool
    cost the same single coordinator thread.  That is what makes the
    pool *shareable* — and ``repro.cluster.ClusterService`` puts a job
    queue on top of it::

        from repro.cluster import ClusterService

        with ClusterService(n_hosts=3, capacity="256MB") as service:
            job = service.submit(
                lambda backend: partial_kmedian(
                    points, k=3, t=30, seed=7, backend=backend),
                memory_budget="64MB", label="nightly",
            )
            result = job.result()

    * ``submit(fn, ...)`` queues a job and returns a ``ClusterJob``
      immediately; once admitted, ``fn`` receives the job's backend view
      of the shared warm pool.  ``checkout()`` is the blocking variant
      that hands the backend straight back.
    * **Admission control** is FIFO over ``memory_budget``: a job is
      admitted when its budget fits into the remaining ``capacity``
      (same grammar as the blocked-evaluation budgets — bytes, or
      ``"64MB"``-style strings).  A job bigger than the whole capacity
      runs once the pool is otherwise idle, so oversized work degrades
      to serial instead of deadlocking.
    * **Isolation is total**: each job gets a lane namespace that keys
      the content-addressed payload caches, runner-resident site state,
      heartbeat accounting and telemetry routing on both ends of every
      socket.  Each job's result — centers, cost, word ledger, *and*
      its private wire ledger — is bit-identical to the same run on a
      standalone pool, no matter what runs next to it.
    * ``REPRO_CLUSTER_SERVICE=1`` routes every ``backend="cluster:N"``
      spec through a process-wide shared service (a ``"service"``
      backend spec is also registered), which is how CI runs the whole
      cluster suite against one shared pool.

    Throughput and p50/p95 job latency at 1, 4 and 16 queued jobs are
    benchmarked in ``benchmarks/BENCH_service_jobs.json``.
    """
    from repro.cluster import ClusterService

    print("\ncluster service (concurrent jobs, one shared pool, same results)")
    serial = partial_kmedian(points, k=k, t=t, n_sites=3, seed=7)
    with ClusterService(n_hosts=2, capacity="256MB") as service:
        jobs = [
            service.submit(
                lambda backend: partial_kmedian(
                    points, k=k, t=t, n_sites=3, seed=7, backend=backend
                ),
                memory_budget="32MB",
                label=f"job{i}",
            )
            for i in range(3)
        ]
        results = [job.result(timeout=300) for job in jobs]
    for job, result in zip(jobs, results):
        assert result.cost == serial.cost
        assert result.ledger.total_words() == serial.ledger.total_words()
        print(
            f"  {job.label} (lane {job.job}): cost {result.cost:9.1f}, "
            f"words {result.ledger.total_words():6.0f}, "
            f"bytes {result.ledger.summary()['total_bytes']:8d}  == serial"
        )


def fault_tolerance_and_recovery(points, k, t) -> None:
    """Fault tolerance and recovery.

    Real runners die.  By default the cluster backend is *fail fast* — the
    first runner death raises a ``DeadHostError`` naming the host, its
    in-flight tasks and the last committed state epoch per site.  Passing a
    ``RetryPolicy`` makes rounds fault tolerant instead::

        from repro.cluster import RetryPolicy

        result = partial_kmedian(
            points, k=3, t=30, backend="cluster:3",
            retry=RetryPolicy(max_retries=1, heartbeat_timeout=5.0),
        )

    A death is detected promptly (socket EOF / send error) or, for a runner
    that is wedged rather than dead, by heartbeat silence: with
    ``heartbeat_timeout`` set, runners send unsolicited liveness frames and
    the coordinator declares a host dead when frames stop while work is in
    flight.  Recovery then:

    1. **re-pins** the dead host's sites to survivors — a pure function of
       the site id and the set of dead hosts, so every run makes the same
       choice;
    2. **replays** each moved site's dispatch log from record 0 on its new
       host (record 0 ships the full state + sticky shard/metric; later
       records re-apply each round's task with its recorded RNG stream and
       write overlay), verifying the rebuilt state against the original
       state digests;
    3. **re-dispatches** the in-flight tasks and re-issues in-flight state
       faults against the replayed copies.

    The run then continues — **bit-identically**: same centers, cost and
    word ledger as a failure-free run.  Only the wire ledger shows the
    recovery, honestly accounted: replay traffic under ``replay_*`` frame
    kinds, plus one ``RecoveryEvent`` (host, round, reason, re-pin map) in
    ``result.ledger.wire.summary()["recovery"]``, and ``recovery.*``
    counters on a traced run.  With ``telemetry=`` on (see
    ``live_telemetry_and_run_history`` below) the same ``recovery.*``
    counters stream into every live Prometheus/JSONL snapshot, so a
    mid-run scrape shows a host death the moment it is handled.  When the
    budget is exhausted (``max_retries`` host deaths already recovered),
    the next death is a clean ``DeadHostError`` with full context.

    Deterministic fault injection — the harness the recovery tests use —
    is available to drills too: a ``FaultPlan`` (or the ``REPRO_FAULT_PLAN``
    environment variable) kills, stalls, disconnects or delays a chosen
    host before/after a chosen dispatch of a chosen round.
    """
    from repro.cluster import ClusterBackend, FaultPlan, RetryPolicy

    print("\nfault tolerance (kill host 1 mid-round, recover, same result)")
    baseline = partial_kmedian(points, k=k, t=t, n_sites=4, seed=7)
    backend = ClusterBackend(
        n_hosts=3,
        retry=RetryPolicy(max_retries=1),
        fault_plan=FaultPlan.parse("kill host=1 round=1 task=1 when=after"),
    )
    try:
        result = partial_kmedian(points, k=k, t=t, n_sites=4, seed=7, backend=backend)
    finally:
        backend.close()
    event = result.ledger.wire.summary()["recovery"][0]
    replay_bytes = sum(
        n for kind, n in result.ledger.wire.bytes_by_kind().items()
        if kind.startswith("replay")
    )
    print(f"  identical to no-failure run : {result.cost == baseline.cost}")
    print(f"  host {event['host']} re-pinned             : {event['repin']}")
    print(f"  replayed frames / bytes     : {event['replayed_frames']} / {replay_bytes}")


def wire_codecs_and_content_addressed_payloads(points, k, t) -> None:
    """Wire codecs and content-addressed payloads.

    The cluster backend's wire path is three composable layers, and each
    one shows up separately in the accounting:

    * **Codec frames** — every frame is pickled (protocol 5, numpy buffers
      out of band, so decode is zero-copy) and its body optionally
      compressed.  The default :class:`repro.cluster.WirePolicy`
      compresses site/task frames with the best available codec (zstd via
      the ``zstd`` extra — ``pip install .[zstd]`` — else stdlib zlib) and
      leaves latency-sensitive ``state_pull``/control frames uncompressed.
      ``REPRO_WIRE_CODEC=none|zlib|zstd`` overrides the compressible
      kinds; an unavailable zstd silently falls back to zlib, so the
      override never changes results, only bytes.  Compression is kept
      per frame only when it shrinks, so incompressible payloads never
      grow.
    * **Content-addressed payloads** — every large ``run_tasks`` payload
      component is digested (16-byte blake2b of its pickle) and cached on
      *both* ends of each runner socket.  The first crossing ships the
      bytes, every later crossing of the same content — either direction —
      ships the digest.  center_g's per-tau collapse matrices, re-shipped
      every round before, now cost ~16 bytes after round 1; the tracer's
      ``cluster.payload_hit``/``payload_miss`` counters say how often.
    * **Honest accounting** — every wire record carries the raw/encoded
      pair, so nothing the codecs save is hidden::

          result.ledger.wire.total_bytes()        # what crossed the sockets
          result.ledger.wire.total_raw_bytes()    # what it would've cost raw
          result.ledger.wire.compression_by_kind()  # the benchmark column

      Traced runs double-count independently (``wire.bytes*`` raw,
      ``wire.bytes_encoded*`` encoded) and ``protocol_summary`` checks both
      pairs bit for bit.

    Results are bit-identical under every codec; only bytes change.
    """
    print("\nwire codecs (raw vs encoded bytes, same results)")
    result = partial_kmedian(points, k=k, t=t, n_sites=3, seed=7, backend="cluster:3")
    wire = result.ledger.wire
    print(
        f"  encoded {wire.total_bytes()} B on the wire, "
        f"{wire.total_raw_bytes()} B raw "
        f"({wire.compression_ratio():.2f}x compression)"
    )
    for kind, ratio in sorted(wire.compression_by_kind().items()):
        print(f"    {kind:<20} {ratio:5.2f}x")


def memory_budgets_and_out_of_core_shards(points, k, t) -> None:
    """Memory budgets and out-of-core shards.

    Site-local preclustering materialises an ``n_i x n_i`` cost matrix, so
    large shards OOM long before communication matters.  Every protocol
    accepts ``memory_budget=`` (bytes, or a string like ``"64MB"``) to cap
    any single distance/cost block a party holds:

    * reductions (diameter, witness sweeps, nearest-candidate attachment)
      run blocked — only one tile of at most the budget exists at a time;
    * site cost matrices larger than the budget are streamed from
      disk-backed ``np.memmap`` shards in a per-run scratch directory
      (removed when the run completes), so instances whose dense matrices
      exceed RAM still run;
    * a shard crosses the runtime's process boundary as a *handle*
      (path + shape), never as ``n_i^2`` bytes.

    Results are bit-identical for every budget — same centers, same cost,
    same communication words — so the knob trades only wall-clock for
    memory.  It composes freely with ``backend=``::

        partial_kmedian(points, k=3, t=30, n_sites=8,
                        backend="process", memory_budget="256MB")
    """
    print("\nmemory budgets (same seed => identical results)")
    for budget in (None, "1MB", "64KB"):
        result = partial_kmedian(
            points, k=k, t=t, n_sites=4, seed=7, memory_budget=budget
        )
        storage = result.metadata.get("cost_matrix_storage")
        label = "dense" if budget is None else budget
        print(
            f"  memory_budget={label!s:<6}: cost {result.cost:9.1f}, "
            f"words {result.total_words:6.0f}, site storage {storage}"
        )


def fused_plans_and_prefetch(points, k, t) -> None:
    """Fused plans and prefetch.

    A memory budget makes every reduction *stream*, and streaming twice
    costs twice.  ``repro.metrics.plan.ReductionPlan`` fuses several
    reductions over the same cost matrix into ONE streaming pass — each
    tile is loaded exactly once and handed to every registered op::

        from repro.metrics import ReductionPlan

        plan = ReductionPlan(cost_matrix, memory_budget="64MB")
        h_max   = plan.add_max()
        h_count = plan.add_count_within([r1, r2, r3], weights=w)
        h_near  = plan.add_argmin_per_row()
        plan.execute()                  # one pass, cache-sized tiles
        h_max.value, h_count.value      # bitwise == the standalone calls

    Tiles are sized to ``min(memory_budget, cache_target)`` (column strips
    when a ``count_within`` op is present, so the Fortran-order summation —
    and therefore the bits — never depends on the tiling), and memmap-backed
    tiles are **double-buffered**: a background thread loads tile ``i+1``
    while the ops consume tile ``i``.  The knob is ``prefetch=`` — ``None``
    (auto: on exactly when the matrix streams from disk), ``True`` or
    ``False`` — and it is accepted by every protocol driver next to
    ``memory_budget``.  The k-center coordinator leans on both: a whole
    batch of radius guesses is seeded from one fused pass and the greedy
    then only re-reads newly covered rows, instead of re-streaming the
    matrix ``k`` times per guess.  Results are bit-identical in every
    configuration; the knobs trade only wall-clock.
    """
    print("\nfused plans + prefetch (same seed => identical results)")
    for prefetch in (False, True):
        result = partial_kcenter(
            points, k=k, t=t, n_sites=4, seed=7,
            memory_budget="64KB", prefetch=prefetch,
        )
        print(
            f"  prefetch={prefetch!s:<5}: cost {result.cost:9.1f}, "
            f"words {result.total_words:6.0f}"
        )


def observability(points, k, t) -> None:
    """Observability.

    Every protocol accepts ``trace=True``: the run records spans
    (coordinator phases, per-site tasks, cluster rpcs), events and counters
    onto one coordinator timeline — runner-side buffers are shipped back in
    the result frames and rebased into the rpc windows that carried them —
    and attaches the :class:`repro.obs.Tracer` to ``result.trace``.  The
    default ``trace=False`` costs nothing: the null tracer allocates no
    per-task objects and results stay bit-identical either way.

    Three consumers come in the box::

        from repro.obs import (
            render_round_report, protocol_summary, write_chrome_trace,
        )

        result = partial_kmedian(points, k=3, t=30, n_sites=3,
                                 backend="cluster:3", trace=True)
        print(render_round_report(result))   # per (round, host): tasks,
                                             # task/rpc seconds, sent/recv
                                             # bytes, bytes by frame kind
        protocol_summary(result)             # words, bytes (ledger AND
                                             # trace, cross-checked), cache/
                                             # prefetch/state counters
        write_chrome_trace(result.trace, "trace.json")  # open in
                                             # chrome://tracing or
                                             # https://ui.perfetto.dev

    On a cluster backend the tracer counts every frame's bytes itself and
    ``protocol_summary`` asserts they equal the wire ledger bit for bit —
    the trace is an independent witness of the byte accounting, not a copy
    of it.  Counters surface what the lower layers did: ``cluster.resident_
    hit/miss`` (runner-resident shard+metric), ``cluster.state_pulls`` (lazy
    state faults), ``plan.executions``/``plan.tiles`` (fused passes),
    ``prefetch.hit/miss`` (double-buffered tiles), ``blocked.spills``.
    """
    from repro.obs import protocol_summary, render_round_report

    print("\nobservability (trace=True attaches a run timeline)")
    result = partial_kmedian(points, k=k, t=t, n_sites=3, seed=7, trace=True)
    summary = protocol_summary(result)
    print(
        f"  spans {summary['n_spans']}, rounds {summary['rounds']}, "
        f"words {summary['total_words']:.0f}, "
        f"bytes match ledger: {summary['bytes_match']}"
    )
    print("\n".join("  " + line for line in render_round_report(result).splitlines()))


def live_telemetry_and_run_history(points, k, t) -> None:
    """Live telemetry and run history.

    ``trace=True`` records a run; ``telemetry=`` *watches* one.  Passing
    ``telemetry=True`` (or a configured :class:`repro.obs.TelemetrySession`)
    runs the live plane next to the protocol:

    * **resource sampling** — a background sampler on the coordinator and,
      on a cluster backend, on every runner.  Runner samples (RSS, CPU
      seconds, thread/fd counts) piggyback on the heartbeat frames that
      cross the sockets anyway — zero extra round trips, every heartbeat
      byte accounted under the wire ledger's ``hb`` kind, still bit-for-bit
      equal to the trace's counters;
    * **streaming snapshots** — a snapshot thread publishes the tracer's
      counters and gauges mid-run to pluggable sinks: Prometheus text
      exposition (``prometheus_path=`` file target, or ``prometheus_port=``
      for a stdlib HTTP endpoint to point a scraper at) and JSON lines
      (``jsonl_path=``).  Mid-run rows show live ``progress.round``,
      ``progress.tasks_in_flight``, ``wire.bytes`` and ``resource.*`` —
      and, on a recovered run, the ``recovery.*`` counters;
    * **structured logs** — span-correlated JSON-lines records
      (``log_path=``), runner records forwarded over the wire and rebased
      onto the coordinator timeline;
    * **run history** — :class:`repro.obs.RunHistory` appends one summary
      record per run to a persistent JSONL store, and the CLI reads it
      back::

          python -m repro.obs.history report
          python -m repro.obs.history compare --baseline BENCH_cluster_bytes.json

      ``compare`` exits 1 when any tracked metric (bytes/word raw+encoded,
      wall seconds) exceeds 2x its baseline — CI runs it as a smoke step
      after appending its own benchmark rows.

    The default ``telemetry=False`` is the same null-object bargain as
    ``trace=False``: one attribute read, zero per-task allocations,
    bit-identical results.
    """
    import os
    import tempfile
    import time

    from repro.obs import TelemetrySession
    from repro.obs.history import RunHistory

    print("\nlive telemetry (snapshots + resource samples) and run history")
    with tempfile.TemporaryDirectory(prefix="repro-quickstart-") as tmp:
        session = TelemetrySession(
            sample_interval=0.02,
            snapshot_interval=0.05,
            prometheus_path=os.path.join(tmp, "metrics.prom"),
            jsonl_path=os.path.join(tmp, "snapshots.jsonl"),
            label="quickstart",
        )
        start = time.perf_counter()
        result = partial_kmedian(
            points, k=k, t=t, n_sites=3, seed=7,
            backend="cluster:3", telemetry=session,
        )
        wall = time.perf_counter() - start
        snapshot = session.last_snapshot
        gauges = snapshot["gauges"]
        runner_rss = [
            (name.split(".")[1], value / 1e6)
            for name, value in sorted(gauges.items())
            if name.startswith("resource.host-") and name.endswith(".rss_bytes")
        ]
        hb_bytes = result.ledger.wire.bytes_by_kind().get("hb", 0)
        with open(session.sinks[0].path) as fh:
            n_snapshots = sum(1 for _ in fh)
        print(f"  snapshots published     : {n_snapshots} "
              f"(JSONL + Prometheus text, label 'quickstart')")
        print(f"  final wire.bytes gauge  : {snapshot['counters']['wire.bytes']:.0f}")
        print(f"  coordinator peak RSS    : {session.peak_rss / 1e6:.0f} MB")
        print(f"  runner RSS via heartbeat: "
              + ", ".join(f"{host} {rss:.0f} MB" for host, rss in runner_rss))
        print(f"  heartbeat bytes (ledger): {hb_bytes} under kind 'hb'")

        history = RunHistory(os.path.join(tmp, "RUN_HISTORY.jsonl"))
        history.append_result(
            "kmedian", result, wall_s=wall, peak_rss_bytes=session.peak_rss
        )
        latest = history.latest_by_protocol()["kmedian"]
        print(f"  history record appended : kmedian "
              f"{latest['bytes_per_word']:.0f} B/word, wall {latest['wall_s']:.2f}s")
        session.close()


if __name__ == "__main__":
    main()
