"""Uncertain data scenario: clustering noisy GPS-like position estimates.

Each tracked object (a delivery vehicle, say) is not a point but a discrete
distribution over candidate locations — the output of a noisy positioning
pipeline.  Sites (regional servers) each track a subset of the objects and
should agree on k depot locations while ignoring a few objects whose position
estimates are garbage.

This is Section 5 of the paper: the objects are *uncertain nodes*, the
objective is the expected assignment cost, and the trick that keeps
communication low is collapsing every node to its 1-median and carrying the
collapse cost on a "tentacle" (Figure 1) instead of shipping distributions.

The script runs Algorithm 3 for the uncertain (k, t)-median and the
per-point center objective, and Algorithm 4 for the global center objective,
and reports exact / Monte-Carlo objective values plus communication.

Run with:  python examples/uncertain_gps_traces.py
"""

import numpy as np

from repro import uncertain_partial_kcenter_g, uncertain_partial_kmedian
from repro.data import uncertain_nodes_from_mixture
from repro.uncertain import estimate_center_g_cost, exact_assigned_cost


def main() -> None:
    workload = uncertain_nodes_from_mixture(
        n_nodes=90, n_outlier_nodes=10, n_clusters=3,
        ground_size=260, support_size=6, rng=5,
    )
    instance = workload.instance
    k, t, s = 3, 10, 3
    ship_everything = instance.encoding_words()

    print(f"{instance.n_nodes} uncertain objects over {instance.n_ground_points} candidate "
          f"locations, {s} regional servers, k={k}, t={t}")
    print(f"shipping every distribution to one server would cost ~{ship_everything:.0f} words\n")

    # --- Uncertain (k, t)-median (Algorithm 3) ------------------------------
    median = uncertain_partial_kmedian(instance, k, t, n_sites=s, epsilon=0.5, seed=11)
    median_cost = exact_assigned_cost(instance, median.metadata["node_assignment"], "median")
    print("uncertain (k, t)-median  — Algorithm 3 (compressed graph)")
    print(f"  expected total cost     : {median_cost:.2f}")
    print(f"  words communicated      : {median.total_words:.0f}")
    print(f"  objects ignored         : {len(median.outliers)} (budget {median.outlier_budget:.0f})")

    planted = set(np.flatnonzero(workload.node_labels < 0).tolist())
    caught = len(planted & set(median.outliers.tolist()))
    print(f"  garbage traces caught   : {caught}/{len(planted)}\n")

    # --- Uncertain (k, t)-center, per-point objective -----------------------
    center_pp = uncertain_partial_kmedian(
        instance, k, t, objective="center", n_sites=s, epsilon=0.5, seed=11
    )
    pp_cost = exact_assigned_cost(instance, center_pp.metadata["node_assignment"], "center")
    print("uncertain (k, t)-center-pp — Algorithm 3")
    print(f"  max expected distance   : {pp_cost:.2f}")
    print(f"  words communicated      : {center_pp.total_words:.0f}\n")

    # --- Uncertain (k, t)-center, global objective (Algorithm 4) ------------
    center_g = uncertain_partial_kcenter_g(instance, k, t, n_sites=s, epsilon=0.5, seed=11)
    g_cost = estimate_center_g_cost(
        instance, center_g.metadata["node_assignment"], n_samples=300, rng=11
    )
    print("uncertain (k, t)-center-g — Algorithm 4 (truncated distances)")
    print(f"  E[max distance] (MC)    : {g_cost:.2f}")
    print(f"  chosen truncation tau   : {center_g.metadata['tau_hat']:.3f}")
    print(f"  words communicated      : {center_g.total_words:.0f} "
          f"(includes the tau sweep and full distributions of shipped outliers)")


if __name__ == "__main__":
    main()
