"""Table 2 — the communication landscape: 1-round vs 2-round vs no-shipping.

Table 2 is the paper's full result grid; its core quantitative content is the
communication comparison

* 1-round algorithms (every site ships its full ``t`` budget):  ``Õ((sk + st) B)``
* 2-round Algorithm 1 / 2:                                       ``Õ((sk + t) B)``
* 2-round no-shipping variant (Theorem 3.8):                     ``Õ(s/delta + s k B)``

so the 2-round protocol's advantage over the 1-round one grows roughly like
``s`` once ``t`` dominates ``sk``, and the no-shipping variant is flat in
``t``.  The benchmarks sweep ``s`` and ``t`` and check those orderings and
growth shapes, while also confirming that solution quality stays comparable.
"""

import numpy as np
import pytest

from benchmarks.harness import record_rows
from repro.analysis import evaluate_centers
from repro.baselines import one_round_protocol
from repro.core import distributed_partial_median, distributed_partial_median_no_shipping
from repro.distributed import DistributedInstance, partition_balanced


@pytest.mark.paper_experiment("T2-comm-scaling-s")
def test_table2_communication_vs_sites(benchmark, bench_metric, bench_workload):
    """Sweep s: the 1-round/2-round words ratio should grow roughly like s."""
    k, t = 3, 60
    site_counts = (2, 4, 8, 16)

    def sweep():
        rows = []
        for s in site_counts:
            shards = partition_balanced(bench_workload.n_points, s, rng=11)
            instance = DistributedInstance.from_partition(bench_metric, shards, k, t, "median")
            two_round = distributed_partial_median(instance, epsilon=0.5, rng=11)
            one_round = one_round_protocol(instance, epsilon=0.5, rng=11)
            no_ship = distributed_partial_median_no_shipping(
                instance, epsilon=0.5, delta=0.5, rng=11
            )
            rows.append(
                {
                    "s": s,
                    "one_round_words": one_round.total_words,
                    "alg1_words": two_round.total_words,
                    "no_ship_words": no_ship.total_words,
                    "one_round/alg1": one_round.total_words / two_round.total_words,
                    "alg1_cost": evaluate_centers(
                        bench_metric, two_round.centers, two_round.outlier_budget, objective="median"
                    ).cost,
                    "one_round_cost": evaluate_centers(
                        bench_metric, one_round.centers, one_round.outlier_budget, objective="median"
                    ).cost,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows(benchmark, "Table2-communication-vs-s", rows,
                title="Table 2: communication vs number of sites (k=3, t=60)")

    ratios = [row["one_round/alg1"] for row in rows]
    # The separation grows with s ...
    assert ratios[-1] > ratios[0]
    # ... and at the largest s the 1-round protocol is at least ~2x costlier.
    assert ratios[-1] >= 2.0
    # Quality stays comparable while communication shrinks.
    for row in rows:
        assert row["alg1_cost"] <= 1.5 * row["one_round_cost"] + 1e-9


@pytest.mark.paper_experiment("T2-comm-scaling-t")
def test_table2_communication_vs_outlier_budget(benchmark, bench_metric, bench_workload):
    """Sweep t: Algorithm 1 grows ~linearly in t, the 1-round baseline ~s times faster,
    and the no-shipping variant stays essentially flat."""
    s, k = 8, 3
    budgets = (20, 40, 80, 160)
    shards = partition_balanced(bench_workload.n_points, s, rng=12)

    def sweep():
        rows = []
        for t in budgets:
            instance = DistributedInstance.from_partition(bench_metric, shards, k, t, "median")
            two_round = distributed_partial_median(instance, epsilon=0.5, rng=12)
            one_round = one_round_protocol(instance, epsilon=0.5, rng=12)
            no_ship = distributed_partial_median_no_shipping(
                instance, epsilon=0.5, delta=0.5, rng=12
            )
            rows.append(
                {
                    "t": t,
                    "one_round_words": one_round.total_words,
                    "alg1_words": two_round.total_words,
                    "no_ship_words": no_ship.total_words,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows(benchmark, "Table2-communication-vs-t", rows,
                title="Table 2: communication vs outlier budget (s=8, k=3)")

    # Growth over the sweep (words at largest t / words at smallest t).
    growth = {
        key: rows[-1][key] / rows[0][key]
        for key in ("one_round_words", "alg1_words", "no_ship_words")
    }
    # The 1-round baseline grows markedly faster than Algorithm 1 ...
    assert growth["one_round_words"] > 1.5 * growth["alg1_words"]
    # ... and the no-shipping variant is nearly flat in t.
    assert growth["no_ship_words"] < 1.6
    # At every t, the ordering no-ship <= alg1 <= one-round holds.
    for row in rows:
        assert row["no_ship_words"] <= row["alg1_words"] <= row["one_round_words"]


@pytest.mark.paper_experiment("T2-noship-delta")
def test_table2_no_shipping_delta_tradeoff(benchmark, bench_metric, bench_workload):
    """Theorem 3.8: smaller delta costs more profile words but never ships outliers."""
    s, k, t = 6, 3, 80
    shards = partition_balanced(bench_workload.n_points, s, rng=13)
    instance = DistributedInstance.from_partition(bench_metric, shards, k, t, "median")

    def sweep():
        rows = []
        for delta in (0.25, 0.5, 1.0):
            result = distributed_partial_median_no_shipping(
                instance, epsilon=0.5, delta=delta, rng=13
            )
            profile_words = sum(m.words for m in result.ledger.filter(kind="cost_profile"))
            rows.append(
                {
                    "delta": delta,
                    "total_words": result.total_words,
                    "profile_words": profile_words,
                    "outlier_budget": result.outlier_budget,
                    "realized_cost": evaluate_centers(
                        bench_metric, result.centers, result.outlier_budget, objective="median"
                    ).cost,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows(benchmark, "Table2-noship-delta", rows,
                title="Table 2 ((2+eps+delta)t rows): delta trade-off")

    profile_words = [row["profile_words"] for row in rows]
    budgets = [row["outlier_budget"] for row in rows]
    assert profile_words[0] >= profile_words[-1]  # finer grid costs more words
    assert budgets == sorted(budgets)  # larger delta -> larger excess budget
