"""Runtime backends — wall-clock scaling of site-local computation.

The coordinator model is embarrassingly parallel across sites: site time is
``Õ(n_i^2)`` per round and every site is independent, so with ``w`` workers
the per-round site phase should drop from ``sum_i n_i^2`` towards
``max_i n_i^2``.  This benchmark runs Algorithm 1 on one large multi-site
instance under every execution backend and reports wall-clock, verifying
that results (centers, cost, ledger words) are identical along the way.

On a multi-core machine the parallel backends must beat serial wall-clock;
on a single-core container there is nothing to parallelise onto, so the
speedup assertion is skipped there (the parity assertions always run).
The core count that gates the assertion is the *effective* one — the
scheduler affinity mask, not ``os.cpu_count()`` — so an affinity-limited box
(e.g. a 1-of-64-cores CI container) cannot be asked to show speedup it
physically cannot produce.
"""

import os
import time

import numpy as np
import pytest

from benchmarks.harness import record_rows
from repro.core import distributed_partial_median
from repro.data import gaussian_mixture_with_outliers
from repro.distributed import DistributedInstance, partition_balanced
from repro.runtime import effective_cpu_count, resolve_backend

BACKENDS = ["serial", "thread", "process"]


@pytest.fixture(scope="module")
def runtime_instance():
    """A large multi-site instance: 8 sites x ~400 points each.

    Site-local preclustering is quadratic in ``n_i``, so this is big enough
    for the per-site work to dwarf the runtime's dispatch overhead.
    """
    workload = gaussian_mixture_with_outliers(
        n_inliers=3120, n_outliers=80, n_clusters=5, dim=2,
        separation=16.0, cluster_std=1.0, rng=20170609,
    )
    metric = workload.to_metric()
    shards = partition_balanced(workload.n_points, 8, rng=3)
    return DistributedInstance.from_partition(metric, shards, 4, 80, "median")


def _run(instance, backend):
    return distributed_partial_median(instance, epsilon=0.5, rng=11, backend=backend)


def speedup_guard_verdict(n_cores: int, walls: dict, relaxed: bool = False) -> str:
    """Decide what the speedup assertion should do on this box.

    Pure function of (effective cores, wall-clocks, relaxed flag) so the
    guard itself stays testable on a 1-core container, where the live
    benchmark can only ever exercise the skip path: ``"skip-cores"`` when
    the affinity mask leaves nothing to parallelise onto, ``"pass"`` when a
    parallel backend beat serial, ``"skip-relaxed"`` when
    ``REPRO_RELAXED_SPEEDUP`` excuses a shared runner that showed no
    speedup, and ``"fail"`` otherwise.
    """
    if n_cores < 2:
        return "skip-cores"
    best_parallel = min(walls["thread"], walls["process"])
    if best_parallel < walls["serial"]:
        return "pass"
    return "skip-relaxed" if relaxed else "fail"


@pytest.mark.paper_experiment("runtime-backends")
def test_runtime_backend_speedup(benchmark, runtime_instance):
    """Parallel site execution beats serial wall-clock at large n, s (given cores)."""
    n_cores = effective_cpu_count()
    results = {}
    walls = {}
    for name in BACKENDS:
        backend = resolve_backend(name)
        try:
            if name != "serial":
                # Warm the pool so worker startup is not billed to the protocol.
                backend.map_ordered(abs, [0] * backend.max_workers)
            start = time.perf_counter()
            results[name] = _run(runtime_instance, backend)
            walls[name] = time.perf_counter() - start
        finally:
            backend.close()

    # Re-run serial under the benchmark fixture for the recorded timing.
    benchmark.pedantic(_run, args=(runtime_instance, "serial"), rounds=1, iterations=1)

    base = results["serial"]
    rows = []
    for name in BACKENDS:
        result = results[name]
        np.testing.assert_array_equal(base.centers, result.centers)
        assert base.cost == result.cost
        assert base.ledger.total_words() == result.ledger.total_words()
        rows.append(
            {
                "backend": name,
                "wall_s": walls[name],
                "speedup_vs_serial": walls["serial"] / walls[name],
                "site_time_sum_s": sum(result.site_time.values()),
                "cost": result.cost,
                "total_words": result.total_words,
            }
        )
    rows.append({"backend": f"(cores={n_cores})", "wall_s": "", "speedup_vs_serial": "",
                 "site_time_sum_s": "", "cost": "", "total_words": ""})
    record_rows(
        benchmark, "runtime-backends", rows,
        title="Execution backends: identical results, wall-clock scaling",
    )

    verdict = speedup_guard_verdict(
        n_cores, walls, relaxed=bool(os.environ.get("REPRO_RELAXED_SPEEDUP"))
    )
    if verdict == "skip-cores":
        pytest.skip(f"only {n_cores} core available; speedup needs real parallelism")
    if verdict == "skip-relaxed":
        # Shared CI runners have noisy neighbours and few real cores; there
        # the speedup is reported but not enforced.
        pytest.skip(f"relaxed mode: no speedup observed on {n_cores} cores: {walls}")
    assert verdict == "pass", (
        f"expected a parallel backend to beat serial on {n_cores} cores: {walls}"
    )


class TestSpeedupGuard:
    """The guard's decision table, exercised even where the benchmark skips."""

    FAST_PARALLEL = {"serial": 2.0, "thread": 1.1, "process": 1.5}
    NO_SPEEDUP = {"serial": 1.0, "thread": 1.2, "process": 1.3}

    def test_single_core_skips_regardless_of_timings(self):
        assert speedup_guard_verdict(1, self.FAST_PARALLEL) == "skip-cores"

    def test_parallel_win_passes(self):
        assert speedup_guard_verdict(4, self.FAST_PARALLEL) == "pass"

    def test_no_speedup_fails_unless_relaxed(self):
        assert speedup_guard_verdict(4, self.NO_SPEEDUP) == "fail"
        assert speedup_guard_verdict(4, self.NO_SPEEDUP, relaxed=True) == "skip-relaxed"

    def test_mocked_affinity_feeds_the_guard(self, monkeypatch):
        # The guard must see the affinity mask, not the host's core count:
        # a 64-core host pinned to one CPU takes the skip path, and widening
        # the mask (no hardware change) flips it to enforcement.
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {5}, raising=False)
        assert effective_cpu_count() == 1
        assert (
            speedup_guard_verdict(effective_cpu_count(), self.FAST_PARALLEL)
            == "skip-cores"
        )
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: set(range(8)), raising=False
        )
        assert effective_cpu_count() == 8
        assert (
            speedup_guard_verdict(effective_cpu_count(), self.NO_SPEEDUP) == "fail"
        )
