"""Shared fixtures and helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper (see the
experiment index in ``DESIGN.md``): it measures wall-clock time through
pytest-benchmark *and* records the quantities the paper actually reports
(approximation ratios, communication words, rounds, per-party times) in
``benchmark.extra_info`` so that ``EXPERIMENTS.md`` can be written from the
saved benchmark JSON or from the printed tables (run with ``-s``).
"""

from __future__ import annotations

import pytest

from repro.data import gaussian_mixture_with_outliers, uncertain_nodes_from_mixture


def pytest_configure(config):
    # Benchmarks are part of the default testpaths (pyproject.toml) and run
    # with the regular suite; deselect with `pytest tests` when iterating.
    config.addinivalue_line("markers", "paper_experiment(id): maps a benchmark to a paper table/figure")


@pytest.fixture(scope="session")
def bench_workload():
    """Medium deterministic workload shared by the Table 1 benchmarks.

    1200 inlier points in 4 clusters plus 60 planted outliers, 2-D.
    """
    return gaussian_mixture_with_outliers(
        n_inliers=1200, n_outliers=60, n_clusters=4, dim=2,
        separation=14.0, cluster_std=1.0, rng=20170607,
    )


@pytest.fixture(scope="session")
def bench_metric(bench_workload):
    """Euclidean metric over the shared benchmark workload."""
    return bench_workload.to_metric()


@pytest.fixture(scope="session")
def bench_uncertain_workload():
    """Uncertain workload shared by the Table 1 uncertain-row benchmarks."""
    return uncertain_nodes_from_mixture(
        n_nodes=108, n_outlier_nodes=12, n_clusters=3,
        ground_size=320, support_size=6, rng=20170608,
    )
