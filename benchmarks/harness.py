"""Helpers shared by the benchmark modules (table recording, common runs)."""

from __future__ import annotations

import json
import os
from typing import Optional, Sequence

import numpy as np

from repro.analysis import format_table

#: Directory machine-readable benchmark artifacts are written into (the
#: benchmarks directory itself, next to the modules that produce them).
BENCH_ARTIFACT_DIR = os.path.dirname(os.path.abspath(__file__))


def _jsonable(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value)}")


def write_bench_json(name: str, payload: dict) -> str:
    """Write a machine-readable benchmark artifact (e.g. ``BENCH_blocked_plan.json``).

    The artifact lands next to the benchmark modules so successive runs can
    be diffed as a perf trajectory.  numpy scalars/arrays are converted;
    returns the written path.
    """
    path = os.path.join(BENCH_ARTIFACT_DIR, name)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True, default=_jsonable)
        fh.write("\n")
    return path


def write_trace_json(name: str, tracer) -> str:
    """Export a run's :class:`~repro.obs.trace.Tracer` as a Chrome/Perfetto
    ``trace_event`` artifact next to the benchmark modules.

    Load the file in ``chrome://tracing`` or https://ui.perfetto.dev to see
    coordinator and runner spans on one timeline; returns the written path.
    """
    from repro.obs.export import write_chrome_trace

    return write_chrome_trace(tracer, os.path.join(BENCH_ARTIFACT_DIR, name))


def record_rows(benchmark, experiment_id: str, rows, columns: Optional[Sequence[str]] = None, title: Optional[str] = None) -> str:
    """Print a result table and attach the rows to the benchmark record.

    The printed table (visible with ``pytest -s``) and the
    ``benchmark.extra_info`` payload carry the same information; both are the
    source for ``EXPERIMENTS.md``.
    """
    table = format_table(rows, columns, title=title or experiment_id)
    print("\n" + table)
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["rows"] = [
        {
            k: (float(v) if isinstance(v, (int, float, np.floating)) and not isinstance(v, bool) else str(v))
            for k, v in row.items()
        }
        for row in rows
    ]
    return table


__all__ = ["BENCH_ARTIFACT_DIR", "record_rows", "write_bench_json", "write_trace_json"]
