"""Helpers shared by the benchmark modules (table recording, common runs)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.analysis import format_table


def record_rows(benchmark, experiment_id: str, rows, columns: Optional[Sequence[str]] = None, title: Optional[str] = None) -> str:
    """Print a result table and attach the rows to the benchmark record.

    The printed table (visible with ``pytest -s``) and the
    ``benchmark.extra_info`` payload carry the same information; both are the
    source for ``EXPERIMENTS.md``.
    """
    table = format_table(rows, columns, title=title or experiment_id)
    print("\n" + table)
    benchmark.extra_info["experiment"] = experiment_id
    benchmark.extra_info["rows"] = [
        {
            k: (float(v) if isinstance(v, (int, float, np.floating)) and not isinstance(v, bool) else str(v))
            for k, v in row.items()
        }
        for row in rows
    ]
    return table


__all__ = ["record_rows"]
