"""Job throughput and latency of the cluster service's admission queue.

The service multiplexes many concurrent clustering runs onto one shared
warm pool (one selector loop, one set of runner processes).  This
benchmark submits batches of 1, 4 and 16 identical k-median jobs through
:meth:`~repro.cluster.ClusterService.submit` and records, per batch size,
the jobs/sec the shared pool sustains and the p50/p95 per-job latency
(submit-to-result, queueing included).  The single-job row is the
baseline: its latency is what a private pool would deliver, so the other
rows price exactly what sharing costs (or saves — the pool is warm, so a
queued job skips runner spawn entirely).

Wall-clock numbers are recorded but never asserted — the CI box is
1-core and the runners are subprocesses; timing is machine truth, not
repo truth.  What *is* asserted is the semantics under load: every job's
word ledger and cost must be bit-identical to the same run on the serial
backend, at every batch size.

The JSON artifact is only (re)written when ``REPRO_BENCH_ARTIFACTS=1``::

    REPRO_BENCH_ARTIFACTS=1 pytest benchmarks/test_bench_service_jobs.py
"""

import os
import time

import numpy as np
import pytest

from benchmarks.harness import record_rows, write_bench_json
from repro import partial_kmedian
from repro.cluster import ClusterService

K, T = 3, 10
N_SITES = 3
N_HOSTS = 2
BATCH_SIZES = (1, 4, 16)


@pytest.fixture(scope="module")
def job_points():
    return np.random.default_rng(20170727).normal(size=(150, 2))


@pytest.fixture(scope="module")
def serial_baseline(job_points):
    return partial_kmedian(job_points, K, T, n_sites=N_SITES, seed=42)


@pytest.mark.cluster
@pytest.mark.paper_experiment("service_jobs")
def test_service_job_throughput(benchmark, job_points, serial_baseline):
    rows = []
    with ClusterService(n_hosts=N_HOSTS) as service:
        # Warm the pool outside the timed region: the first job pays runner
        # spawn, every later batch measures steady-state service behaviour.
        service.submit(
            lambda b: partial_kmedian(
                job_points, K, T, n_sites=N_SITES, seed=42, backend=b
            ),
            label="warmup",
        ).result(timeout=300)

        def run_batch(n_jobs):
            t0 = time.perf_counter()
            jobs = [
                service.submit(
                    lambda b: partial_kmedian(
                        job_points, K, T, n_sites=N_SITES, seed=42, backend=b
                    ),
                    label=f"batch{n_jobs}-{i}",
                )
                for i in range(n_jobs)
            ]
            latencies = []
            for job in jobs:
                result = job.result(timeout=600)
                latencies.append(time.perf_counter() - t0)
                # Sharing the pool never bends a run's semantics.
                assert result.cost == serial_baseline.cost
                assert (result.ledger.total_words()
                        == serial_baseline.ledger.total_words())
                assert (result.ledger.words_by_kind()
                        == serial_baseline.ledger.words_by_kind())
            return time.perf_counter() - t0, latencies

        for n_jobs in BATCH_SIZES:
            elapsed, latencies = run_batch(n_jobs)
            rows.append(
                {
                    "queued_jobs": n_jobs,
                    "wall_s": elapsed,
                    "jobs_per_s": n_jobs / elapsed,
                    "latency_p50_s": float(np.percentile(latencies, 50)),
                    "latency_p95_s": float(np.percentile(latencies, 95)),
                }
            )

        # One representative batch for pytest-benchmark's timing record.
        benchmark.pedantic(lambda: run_batch(4), rounds=1, iterations=1)

    record_rows(
        benchmark,
        "service_job_throughput",
        rows,
        columns=["queued_jobs", "wall_s", "jobs_per_s",
                 "latency_p50_s", "latency_p95_s"],
        title="cluster service job throughput (shared 2-host pool)",
    )

    if os.environ.get("REPRO_BENCH_ARTIFACTS") != "1":
        return
    path = write_bench_json(
        "BENCH_service_jobs.json",
        {
            "experiment": "service_job_throughput",
            "workload": {
                "n_points": int(job_points.shape[0]),
                "k": K, "t": T, "n_sites": N_SITES, "n_hosts": N_HOSTS,
            },
            "rows": rows,
        },
    )
    benchmark.extra_info["artifact"] = path
