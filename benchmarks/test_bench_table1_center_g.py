"""Table 1, row 6 — uncertain (k, t)-center-g (Algorithm 4, Theorem 5.14).

Paper claim: ``O(1 + 1/eps)`` approximation excluding ``(1 + eps) t`` nodes,
2 rounds, communication ``Õ(s k B + t I + s log Delta)`` — note the ``t I``
term (outlier nodes travel with their full distribution, unlike Algorithm 3)
and the ``log Delta`` factor from the truncation-radius sweep.

The E[max] objective does not decompose, so solution quality is estimated by
Monte-Carlo over joint realizations and compared against (a) a naive
"cluster the 1-medians, ignore nothing" solution and (b) the per-point
center-pp relaxation, which lower-bounds center-g.
"""

import numpy as np
import pytest

from benchmarks.harness import record_rows
from repro.core import distributed_uncertain_center_g, distributed_uncertain_clustering
from repro.distributed import UncertainDistributedInstance, partition_balanced
from repro.uncertain import estimate_center_g_cost, sample_realizations


@pytest.mark.paper_experiment("T1-center-g")
def test_table1_center_g(benchmark, bench_uncertain_workload):
    uncertain = bench_uncertain_workload.instance.node_subset(np.arange(0, 60))
    s, k, t = 3, 3, 8
    shards = partition_balanced(uncertain.n_nodes, s, rng=9)
    instance = UncertainDistributedInstance.from_partition(uncertain, shards, k, t, "center-g")

    result = benchmark.pedantic(
        distributed_uncertain_center_g,
        args=(instance,),
        kwargs={"epsilon": 0.5, "rng": 9},
        rounds=1,
        iterations=1,
    )

    # Paired Monte-Carlo evaluation of E[max d(sigma(j), pi(j))].
    realizations = sample_realizations(uncertain, 250, rng=10)
    assignment = result.metadata["node_assignment"]
    cost_g = estimate_center_g_cost(uncertain, assignment, realizations=realizations)

    # Comparator: Algorithm 3's center-pp solution evaluated under the global
    # objective (it optimises the wrong objective but is the natural fallback).
    pp_instance = UncertainDistributedInstance.from_partition(uncertain, shards, k, t, "center")
    pp_result = distributed_uncertain_clustering(pp_instance, rng=9)
    cost_pp_solution = estimate_center_g_cost(
        uncertain, pp_result.metadata["node_assignment"], realizations=realizations
    )

    B = instance.words_per_point()
    I = instance.node_words()
    spread = result.metadata["spread"]
    comm_yardstick = s * k * B + t * I + s * np.log2(max(spread, 2.0))
    rows = [
        {
            "s": s,
            "k": k,
            "t": t,
            "tau_hat": result.metadata["tau_hat"],
            "E[max]_alg4": cost_g,
            "E[max]_center_pp_solution": cost_pp_solution,
            "total_words": result.total_words,
            "words/(skB+tI+slogD)": result.total_words / comm_yardstick,
            "rounds": result.rounds,
            "ignored_budget": result.outlier_budget,
        }
    ]
    record_rows(benchmark, "Table1-center-g", rows, title="Table 1 (center-g row): Algorithm 4")

    assert result.rounds == 2
    # Shape claims: constant-multiple of the paper's communication yardstick,
    # and the dedicated center-g algorithm is competitive with (or better
    # than) repurposing the per-point solution.
    assert result.total_words <= 25 * comm_yardstick
    assert cost_g <= 1.5 * cost_pp_solution + 1e-9
    assert cost_g < uncertain.ground_metric.diameter()
