"""Table 1, rows 1-2 — distributed (k, t)-median.

Paper claims (2-round column of Table 1):

* ``O(1)`` approximation with ``k`` centers and ``t`` ignored points, or
  ``O(1 + 1/eps)`` approximation ignoring ``(1 + eps) t`` points;
* total communication ``Õ((sk + t) B)``;
* 2 rounds; site time ``Õ(n_i^2)``, coordinator time ``Õ((sk + t)^2)``.

The benchmark runs Algorithm 1 on the shared Gaussian-with-outliers workload
for several ``(s, k, t)`` settings and a sweep of ``eps``, reporting measured
approximation ratios (against the strong centralized reference), measured
words against the ``(sk + t) B`` yardstick, round counts and per-party times.
"""

import pytest

from benchmarks.harness import record_rows
from repro.analysis import approximation_ratio, evaluate_centers
from repro.baselines import centralized_reference
from repro.core import distributed_partial_median
from repro.distributed import DistributedInstance, partition_balanced


def _run_once(metric, workload, s, k, t, epsilon, seed=0):
    shards = partition_balanced(workload.n_points, s, rng=seed)
    instance = DistributedInstance.from_partition(metric, shards, k, t, "median")
    result = distributed_partial_median(instance, epsilon=epsilon, rng=seed)
    return instance, result


@pytest.mark.paper_experiment("T1-median")
@pytest.mark.parametrize("s,k", [(4, 3), (8, 5)])
def test_table1_median_fixed_eps(benchmark, bench_metric, bench_workload, s, k):
    """O(1+1/eps) approximation at eps=0.5 with Õ((sk+t)B) communication."""
    t = 60
    reference = centralized_reference(bench_metric, k, t, objective="median", rng=1)

    # One full protocol run is ~1-3 s; a couple of rounds is enough for a stable
    # wall-clock figure without dominating the harness runtime.
    instance, result = benchmark.pedantic(
        _run_once, args=(bench_metric, bench_workload, s, k, t, 0.5), rounds=2, iterations=1
    )

    realized = evaluate_centers(bench_metric, result.centers, result.outlier_budget, objective="median")
    ratio = approximation_ratio(realized.cost, reference.cost)
    words_per_skt = result.total_words / ((s * k + t) * instance.words_per_point())
    rows = [
        {
            "s": s,
            "k": k,
            "t": t,
            "eps": 0.5,
            "approx_ratio": ratio,
            "total_words": result.total_words,
            "words/(sk+t)B": words_per_skt,
            "rounds": result.rounds,
            "site_time_max_s": result.site_time_max,
            "coord_time_s": result.coordinator_time,
        }
    ]
    record_rows(benchmark, "Table1-median", rows, title="Table 1 (median row): Algorithm 1")

    assert result.rounds == 2
    assert ratio <= 3.0  # paper claims O(1+1/eps); measured against a heuristic reference
    assert words_per_skt <= 12.0  # communication is a small multiple of (sk+t)B


@pytest.mark.paper_experiment("T1-median-eps")
def test_table1_median_epsilon_sweep(benchmark, bench_metric, bench_workload):
    """The O(1 + 1/eps) trade-off: smaller eps -> fewer excess outliers, higher cost."""
    s, k, t = 4, 4, 60
    reference = centralized_reference(bench_metric, k, t, objective="median", rng=1)

    def sweep():
        out = []
        for eps in (0.1, 0.5, 1.0):
            _, result = _run_once(bench_metric, bench_workload, s, k, t, eps, seed=2)
            realized = evaluate_centers(
                bench_metric, result.centers, result.outlier_budget, objective="median"
            )
            out.append((eps, result, realized))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for eps, result, realized in results:
        rows.append(
            {
                "eps": eps,
                "outlier_budget": result.outlier_budget,
                "approx_ratio": approximation_ratio(realized.cost, reference.cost),
                "total_words": result.total_words,
                "rounds": result.rounds,
            }
        )
    record_rows(benchmark, "Table1-median-eps-sweep", rows, title="Table 1 (median): epsilon sweep")

    budgets = [row["outlier_budget"] for row in rows]
    assert budgets == sorted(budgets)  # larger eps -> larger allowed exclusion
    for row in rows:
        assert row["approx_ratio"] <= 4.0
        assert row["rounds"] == 2
