"""Theorem 3.10 — sub-quadratic centralized (k, t)-median via sequential simulation.

Paper claim: given a quadratic-time bicriteria solver (Theorem 3.1), splitting
the data into ``s ~ n^{2/3}`` pieces, solving each piece and finishing on the
``O(sk + t)`` surviving representatives gives a constant-factor
``(k, (1+eps)t)``-median in ``Õ(n^{4/3} k^2)`` time — and repeated application
pushes the exponent towards 1 (Theorem 3.10).

To measure the *shape* honestly, both the direct baseline and the piece-local
solver are configured to match the theorem's premise of a quadratic-time
black box: the local search evaluates **every** facility as an insertion
candidate (``sample_size=None``), so one run on ``m`` points costs
``Theta(k m^2 log m)``.  The benchmark sweeps ``n``, fits log-log scaling
exponents of the measured wall-clock times, and checks that (a) the simulated
solver's exponent is meaningfully smaller, (b) it wins in absolute time at the
largest size, and (c) its solution cost stays within a constant factor.
"""

import time

import numpy as np
import pytest

from benchmarks.harness import record_rows
from repro.analysis import evaluate_centers
from repro.analysis.comparison import scaling_exponent
from repro.core import subquadratic_partial_clustering
from repro.data import gaussian_mixture_with_outliers
from repro.metrics import build_cost_matrix
from repro.sequential import local_search_partial

# The theorem's premise: a quadratic-time bicriteria black box.  Evaluating
# every insertion candidate makes one local-search round Theta(k m^2 log m);
# a sample size larger than any instance means "all facilities".
QUADRATIC_SOLVER = {"sample_size": 10**9, "max_iter": 4}


def _direct_quadratic_solver(metric, k, t, seed):
    n = len(metric)
    start = time.perf_counter()
    costs = build_cost_matrix(metric, range(n), range(n), "median")
    solution = local_search_partial(costs, k, t, rng=seed, **QUADRATIC_SOLVER)
    return time.perf_counter() - start, solution


@pytest.mark.paper_experiment("THM-3.10")
def test_subquadratic_scaling(benchmark):
    k = 3
    sizes = (300, 600, 1200, 2400)

    def sweep():
        rows = []
        for n in sizes:
            t = int(np.sqrt(n))  # the theorem's t <= sqrt(n) regime
            workload = gaussian_mixture_with_outliers(
                n_inliers=n - t, n_outliers=t, n_clusters=k, separation=14.0, rng=n
            )
            metric = workload.to_metric()
            direct_seconds, direct_solution = _direct_quadratic_solver(metric, k, t, seed=1)
            sim = subquadratic_partial_clustering(
                metric, k, t, rng=1,
                local_solver_kwargs=QUADRATIC_SOLVER,
                coordinator_solver_kwargs=QUADRATIC_SOLVER,
            )
            sim_cost = evaluate_centers(metric, sim.centers, sim.outlier_budget, objective="median").cost
            rows.append(
                {
                    "n": n,
                    "t": t,
                    "direct_seconds": direct_seconds,
                    "simulated_seconds": sim.wall_time,
                    "pieces": sim.n_pieces,
                    "direct_cost": direct_solution.cost,
                    "simulated_cost(k,(1+eps)t)": sim_cost,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    record_rows(benchmark, "Theorem-3.10-subquadratic", rows,
                title="Theorem 3.10: direct quadratic solver vs sequentially simulated distributed solver")

    ns = [row["n"] for row in rows]
    direct_exp = scaling_exponent(ns, [row["direct_seconds"] for row in rows])
    sim_exp = scaling_exponent(ns, [row["simulated_seconds"] for row in rows])
    print(f"\nfitted exponents: direct ~ n^{direct_exp:.2f}, simulated ~ n^{sim_exp:.2f}")
    benchmark.extra_info["direct_exponent"] = direct_exp
    benchmark.extra_info["simulated_exponent"] = sim_exp

    # Shape claims: the simulation scales with a smaller exponent and wins in
    # absolute time at the largest size, at a bounded quality loss (it is
    # allowed (1+eps)t exclusions, so it may even be cheaper).
    assert sim_exp < direct_exp - 0.2
    assert rows[-1]["simulated_seconds"] < rows[-1]["direct_seconds"]
    for row in rows:
        assert row["simulated_cost(k,(1+eps)t)"] <= 2.5 * row["direct_cost"] + 1e-9
