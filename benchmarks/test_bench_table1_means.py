"""Table 1, row 3 — distributed (k, (1+eps)t)-means.

Same protocol and bounds as the median row, with squared assignment costs and
slightly larger constants in the approximation guarantee.
"""

import pytest

from benchmarks.harness import record_rows
from repro.analysis import approximation_ratio, evaluate_centers
from repro.baselines import centralized_reference
from repro.core import distributed_partial_median
from repro.distributed import DistributedInstance, partition_balanced


@pytest.mark.paper_experiment("T1-means")
@pytest.mark.parametrize("epsilon", [0.5, 1.0])
def test_table1_means(benchmark, bench_metric, bench_workload, epsilon):
    s, k, t = 4, 4, 60
    reference = centralized_reference(bench_metric, k, t, objective="means", rng=3)
    shards = partition_balanced(bench_workload.n_points, s, rng=4)
    instance = DistributedInstance.from_partition(bench_metric, shards, k, t, "means")

    result = benchmark.pedantic(
        distributed_partial_median, args=(instance,), kwargs={"epsilon": epsilon, "rng": 4},
        rounds=2, iterations=1,
    )

    realized = evaluate_centers(
        bench_metric, result.centers, result.outlier_budget, objective="means"
    )
    ratio = approximation_ratio(realized.cost, reference.cost)
    words_per_skt = result.total_words / ((s * k + t) * instance.words_per_point())
    rows = [
        {
            "s": s,
            "k": k,
            "t": t,
            "eps": epsilon,
            "approx_ratio": ratio,
            "total_words": result.total_words,
            "words/(sk+t)B": words_per_skt,
            "rounds": result.rounds,
            "site_time_max_s": result.site_time_max,
            "coord_time_s": result.coordinator_time,
        }
    ]
    record_rows(benchmark, "Table1-means", rows, title="Table 1 (means row): Algorithm 1, squared costs")

    assert result.rounds == 2
    # Squared objectives amplify constants (paper: "larger constants"); the
    # shape claim is still a constant-factor ratio.
    assert ratio <= 6.0
    assert words_per_skt <= 12.0
