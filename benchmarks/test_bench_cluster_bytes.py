"""Wire bytes vs semantic words across the five protocols on the cluster backend.

The paper's communication claims are stated in *words*; the cluster backend
makes them physical by shipping every payload over a real socket and
recording the exact frame bytes.  This benchmark runs each protocol once on
``"serial"`` (words, zero bytes) and once on a shared 2-host cluster
backend, asserts the word ledgers are identical, and records the
bytes-per-word ratio — the honest conversion factor between the paper's
accounting and what a wire would actually carry (pickle framing, dtype
width, dispatch overhead and all).

Wall-clock is recorded through pytest-benchmark but never asserted (the CI
box is 1-core and the runners are subprocesses).  Byte counts, by contrast,
*are* deterministic — frame sizes don't depend on timing — so the committed
``BENCH_cluster_bytes.json`` doubles as a regression baseline: the benchmark
fails if any protocol's measured bytes-per-word exceeds 2x the committed
value (the headroom covers pickle/version drift, not a reintroduced state
round-trip, which costs 10-20x).  The guard runs under ``--benchmark-disable``
too, which is how CI executes it.

The JSON artifact is only (re)written when ``REPRO_BENCH_ARTIFACTS=1`` is
set::

    REPRO_BENCH_ARTIFACTS=1 pytest benchmarks/test_bench_cluster_bytes.py
"""

import json
import os

import numpy as np
import pytest

from benchmarks.harness import (
    BENCH_ARTIFACT_DIR,
    record_rows,
    write_bench_json,
    write_trace_json,
)
from repro import (
    partial_kcenter,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.cluster import ClusterBackend
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping
from repro.data import gaussian_mixture_with_outliers, uncertain_nodes_from_mixture
from repro.distributed import DistributedInstance, partition_balanced

K, T = 3, 15
N_SITES = 3
N_HOSTS = 2  # deliberately != n_sites: placement is site_id % n_hosts

#: Regression headroom over the committed per-protocol bytes-per-word
#: baseline.  Byte counts are deterministic; 2x absorbs pickle-format and
#: minor frame-layout drift while still catching a reintroduced site-state
#: round-trip (a 10-20x blow-up for kmedian / no_shipping).
BASELINE_HEADROOM = 2.0


def _committed_baseline() -> dict:
    """protocol -> bytes_per_word from the committed benchmark artifact."""
    path = os.path.join(BENCH_ARTIFACT_DIR, "BENCH_cluster_bytes.json")
    with open(path) as fh:
        payload = json.load(fh)
    return {row["protocol"]: float(row["bytes_per_word"]) for row in payload["rows"]}


@pytest.fixture(scope="module")
def cluster_pool():
    backend = ClusterBackend(n_hosts=N_HOSTS)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def cluster_workload():
    return gaussian_mixture_with_outliers(
        n_inliers=300, n_outliers=15, n_clusters=3, dim=2, separation=12.0, rng=20170727
    )


@pytest.fixture(scope="module")
def cluster_uncertain_workload():
    return uncertain_nodes_from_mixture(
        n_nodes=54, n_outlier_nodes=6, n_clusters=3, ground_size=200, support_size=5,
        rng=20170727,
    )


def _no_shipping_runner(workload):
    metric = workload.to_metric()
    shards = partition_balanced(workload.n_points, N_SITES, rng=7)
    instance = DistributedInstance.from_partition(metric, shards, K, T, "median")

    def run(backend, **kwargs):
        return distributed_partial_median_no_shipping(
            instance, rng=42, backend=backend, **kwargs
        )

    return run


def _protocol_runners(workload, uncertain_workload):
    return [
        ("kmedian", lambda backend, **kw: partial_kmedian(
            workload.points, K, T, n_sites=N_SITES, seed=42, backend=backend, **kw)),
        ("kcenter", lambda backend, **kw: partial_kcenter(
            workload.points, K, T, n_sites=N_SITES, seed=42, backend=backend, **kw)),
        ("no_shipping", _no_shipping_runner(workload)),
        ("uncertain_kmedian", lambda backend, **kw: uncertain_partial_kmedian(
            uncertain_workload.instance, K, 6, n_sites=N_SITES, seed=42, backend=backend, **kw)),
        ("center_g", lambda backend, **kw: uncertain_partial_kcenter_g(
            uncertain_workload.instance, K, 6, n_sites=N_SITES, seed=42, backend=backend, **kw)),
    ]


@pytest.mark.cluster
@pytest.mark.paper_experiment("cluster_bytes")
def test_cluster_bytes_per_word(
    benchmark, cluster_pool, cluster_workload, cluster_uncertain_workload
):
    from repro.obs import SUMMARY_COUNTERS

    runners = _protocol_runners(cluster_workload, cluster_uncertain_workload)

    rows = []
    detail = {}
    trace_counters = {}
    traced_tracer = None
    for name, run in runners:
        base = run("serial")
        clustered = run(cluster_pool)
        # One extra traced run per protocol: the byte measurements above stay
        # untraced (the committed baseline's frames), while the trace supplies
        # the cache/prefetch/state counters the report layer surfaces — and a
        # bit-for-bit cross-check of the wire ledger on its own run.
        traced = run(cluster_pool, trace=True)
        assert int(traced.trace.counter("wire.bytes")) == traced.ledger.wire.total_bytes(), name
        trace_counters[name] = {
            counter: traced.trace.counter(counter) for counter in SUMMARY_COUNTERS
        }
        if name == "kmedian":
            traced_tracer = traced.trace
        # The wire never changes the semantics: identical word ledgers.
        assert base.ledger.total_words() == clustered.ledger.total_words(), name
        assert base.ledger.words_by_kind() == clustered.ledger.words_by_kind(), name
        assert base.ledger.total_bytes() == 0, name
        words = clustered.ledger.total_words()
        n_bytes = clustered.ledger.total_bytes()
        assert n_bytes > 0, name
        rows.append(
            {
                "protocol": name,
                "total_words": words,
                "total_bytes": n_bytes,
                "bytes_per_word": n_bytes / max(words, 1e-12),
            }
        )
        detail[name] = {
            "bytes_by_round": clustered.ledger.bytes_by_round(),
            "wire": clustered.ledger.wire.summary(),
            "uplink_payload_bytes": float(
                sum(m.n_bytes or 0 for m in clustered.ledger.messages if m.to_coordinator)
            ),
            "trace_counters": trace_counters[name],
        }

    # The committed artifact is the regression baseline (read *before* any
    # REPRO_BENCH_ARTIFACTS rewrite): a protocol whose measured ratio blows
    # past 2x the committed value means untracked payloads are riding the
    # wire again — exactly how the state round-trip bug would resurface.
    baseline = _committed_baseline()
    for row in rows:
        committed = baseline.get(row["protocol"])
        if committed is None:
            continue
        assert row["bytes_per_word"] <= BASELINE_HEADROOM * committed, (
            f"{row['protocol']}: {row['bytes_per_word']:.0f} bytes/word exceeds "
            f"{BASELINE_HEADROOM}x the committed baseline ({committed:.0f})"
        )

    # Time one representative cluster run (pool already warm).
    benchmark.pedantic(lambda: runners[0][1](cluster_pool), rounds=1, iterations=1)

    record_rows(
        benchmark,
        "cluster_bytes_per_word",
        rows,
        columns=["protocol", "total_words", "total_bytes", "bytes_per_word"],
        title="wire bytes vs semantic words (cluster backend, 2 hosts)",
    )

    if os.environ.get("REPRO_BENCH_ARTIFACTS") != "1":
        return
    path = write_bench_json(
        "BENCH_cluster_bytes.json",
        {
            "experiment": "cluster_bytes_per_word",
            "workload": {
                "n_points": int(cluster_workload.n_points),
                "n_nodes": int(cluster_uncertain_workload.instance.n_nodes),
                "k": K, "t": T, "n_sites": N_SITES, "n_hosts": N_HOSTS,
            },
            "rows": rows,
            "detail": detail,
        },
    )
    benchmark.extra_info["artifact"] = path
    trace_path = write_trace_json("BENCH_cluster_trace.json", traced_tracer)
    benchmark.extra_info["trace_artifact"] = trace_path


def _witness_round_task(ctx):
    """A do-nothing round: isolates the fixed per-round dispatch cost."""
    ctx.send_to_coordinator("witness", 0.0, words=1)


@pytest.mark.cluster
@pytest.mark.paper_experiment("cluster_bytes")
def test_resident_state_amortises_repeat_rounds(benchmark, cluster_pool, cluster_workload):
    """The metric is shipped once, not once per round.

    Two identical no-op rounds over the same network: round 1 pays for the
    sticky half (shard + metric view), round 2 reuses the runner-resident
    copy and ships only the per-round scraps.  The measured dispatch ratio
    is the amortisation a multi-round protocol gets for free.
    """
    from repro.distributed.network import StarNetwork
    from repro.runtime import SiteTask, run_site_tasks

    metric = cluster_workload.to_metric()
    shards = partition_balanced(cluster_workload.n_points, N_SITES, rng=7)
    instance = DistributedInstance.from_partition(metric, shards, K, T, "median")

    def two_rounds():
        network = StarNetwork(instance)
        for _ in range(2):
            network.next_round()
            run_site_tasks(
                network,
                [SiteTask(i, _witness_round_task) for i in range(N_SITES)],
                backend=cluster_pool,
            )
        return network

    network = benchmark.pedantic(two_rounds, rounds=1, iterations=1)
    dispatch = {}
    for rec in network.ledger.wire.records:
        if rec.kind == "site_dispatch":
            dispatch[rec.round_index] = dispatch.get(rec.round_index, 0) + rec.n_bytes
    assert 0 < dispatch[2] < dispatch[1]
    benchmark.extra_info["dispatch_bytes_by_round"] = {
        str(r): int(v) for r, v in sorted(dispatch.items())
    }
    benchmark.extra_info["resident_saving_ratio"] = dispatch[1] / dispatch[2]
