"""Wire bytes vs semantic words across the five protocols on the cluster backend.

The paper's communication claims are stated in *words*; the cluster backend
makes them physical by shipping every payload over a real socket and
recording the exact frame bytes.  This benchmark runs each protocol once on
``"serial"`` (words, zero bytes) and once on a shared 2-host cluster
backend, asserts the word ledgers are identical, and records the
bytes-per-word ratio — the honest conversion factor between the paper's
accounting and what a wire would actually carry (pickle framing, dtype
width, dispatch overhead and all).

Since the wire path grew codec frames and content-addressed payloads, every
row carries the raw/encoded split: ``total_bytes``/``bytes_per_word`` are
what physically crossed the sockets (compressed frames, digest-collapsed
payloads), ``total_raw_bytes``/``raw_bytes_per_word`` what the same frames
would have cost uncompressed, and ``compression`` their ratio — the
benchmark's compression column.

Wall-clock is recorded through pytest-benchmark but never asserted (the CI
box is 1-core and the runners are subprocesses).  Byte counts, by contrast,
are reproducible — raw frame sizes don't depend on timing, and encoded
sizes wobble only by the per-run uuid resident keys riding inside
compressed frames — so the committed ``BENCH_cluster_bytes.json`` doubles
as a regression baseline: the benchmark fails if any protocol's measured
bytes-per-word (encoded, and raw when the artifact records it) exceeds 2x
the committed value (the headroom covers pickle/version drift, not a
reintroduced state round-trip, which costs 10-20x).  The guard runs under
``--benchmark-disable`` too, which is how CI executes it.

The JSON artifact is only (re)written when ``REPRO_BENCH_ARTIFACTS=1`` is
set::

    REPRO_BENCH_ARTIFACTS=1 pytest benchmarks/test_bench_cluster_bytes.py
"""

import json
import os

import numpy as np
import pytest

from benchmarks.harness import (
    BENCH_ARTIFACT_DIR,
    record_rows,
    write_bench_json,
    write_trace_json,
)
from repro import (
    partial_kcenter,
    partial_kmedian,
    uncertain_partial_kcenter_g,
    uncertain_partial_kmedian,
)
from repro.cluster import ClusterBackend, FaultPlan, RetryPolicy
from repro.core.algorithm1_modified import distributed_partial_median_no_shipping
from repro.data import gaussian_mixture_with_outliers, uncertain_nodes_from_mixture
from repro.distributed import DistributedInstance, partition_balanced
from repro.obs import assert_byte_parity
from repro.obs.history import RUN_HISTORY_ENV, RunHistory, summary_record
from repro.obs.sampler import ResourceSampler

K, T = 3, 15
N_SITES = 3
N_HOSTS = 2  # deliberately != n_sites: placement is site_id % n_hosts

#: Regression headroom over the committed per-protocol bytes-per-word
#: baseline.  Byte counts are deterministic; 2x absorbs pickle-format and
#: minor frame-layout drift while still catching a reintroduced site-state
#: round-trip (a 10-20x blow-up for kmedian / no_shipping).
BASELINE_HEADROOM = 2.0


def _committed_baseline() -> dict:
    """protocol -> committed benchmark row (the regression baseline)."""
    path = os.path.join(BENCH_ARTIFACT_DIR, "BENCH_cluster_bytes.json")
    with open(path) as fh:
        payload = json.load(fh)
    return {row["protocol"]: row for row in payload["rows"]}


@pytest.fixture(scope="module")
def cluster_pool():
    backend = ClusterBackend(n_hosts=N_HOSTS)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def cluster_workload():
    return gaussian_mixture_with_outliers(
        n_inliers=300, n_outliers=15, n_clusters=3, dim=2, separation=12.0, rng=20170727
    )


@pytest.fixture(scope="module")
def cluster_uncertain_workload():
    return uncertain_nodes_from_mixture(
        n_nodes=54, n_outlier_nodes=6, n_clusters=3, ground_size=200, support_size=5,
        rng=20170727,
    )


def _no_shipping_runner(workload):
    metric = workload.to_metric()
    shards = partition_balanced(workload.n_points, N_SITES, rng=7)
    instance = DistributedInstance.from_partition(metric, shards, K, T, "median")

    def run(backend, **kwargs):
        return distributed_partial_median_no_shipping(
            instance, rng=42, backend=backend, **kwargs
        )

    return run


def _protocol_runners(workload, uncertain_workload):
    return [
        ("kmedian", lambda backend, **kw: partial_kmedian(
            workload.points, K, T, n_sites=N_SITES, seed=42, backend=backend, **kw)),
        ("kcenter", lambda backend, **kw: partial_kcenter(
            workload.points, K, T, n_sites=N_SITES, seed=42, backend=backend, **kw)),
        ("no_shipping", _no_shipping_runner(workload)),
        ("uncertain_kmedian", lambda backend, **kw: uncertain_partial_kmedian(
            uncertain_workload.instance, K, 6, n_sites=N_SITES, seed=42, backend=backend, **kw)),
        ("center_g", lambda backend, **kw: uncertain_partial_kcenter_g(
            uncertain_workload.instance, K, 6, n_sites=N_SITES, seed=42, backend=backend, **kw)),
    ]


@pytest.mark.cluster
@pytest.mark.paper_experiment("cluster_bytes")
def test_cluster_bytes_per_word(
    benchmark, cluster_pool, cluster_workload, cluster_uncertain_workload
):
    from repro.obs import SUMMARY_COUNTERS

    runners = _protocol_runners(cluster_workload, cluster_uncertain_workload)

    rows = []
    detail = {}
    trace_counters = {}
    peak_rss = {}
    for name, run in runners:
        with ResourceSampler(0.02) as sampler:
            base = run("serial")
            clustered = run(cluster_pool)
            # One extra traced run per protocol: the byte measurements above
            # stay untraced (the committed baseline's frames), while the trace
            # supplies the cache/prefetch/state counters the report layer
            # surfaces — and a bit-for-bit cross-check of the wire ledger on
            # its own run.
            traced = run(cluster_pool, trace=True)
        peak_rss[name] = sampler.peak_rss()
        # Both columns of the raw/encoded split cross-check bit for bit
        # (wire.bytes* counters carry pre-codec sizes, wire.bytes_encoded*
        # what physically crossed the sockets); on mismatch the error names
        # each disagreeing counter rather than a bare integer pair.
        assert_byte_parity(traced, label=name)
        trace_counters[name] = {
            counter: traced.trace.counter(counter) for counter in SUMMARY_COUNTERS
        }
        if name == "kmedian":
            kmedian_base = base
        # The wire never changes the semantics: identical word ledgers.
        assert base.ledger.total_words() == clustered.ledger.total_words(), name
        assert base.ledger.words_by_kind() == clustered.ledger.words_by_kind(), name
        assert base.ledger.total_bytes() == 0, name
        words = clustered.ledger.total_words()
        n_bytes = clustered.ledger.total_bytes()
        raw_bytes = clustered.ledger.wire.total_raw_bytes()
        assert 0 < n_bytes <= raw_bytes, name
        rows.append(
            {
                "protocol": name,
                "total_words": words,
                "total_bytes": n_bytes,
                "total_raw_bytes": raw_bytes,
                "bytes_per_word": n_bytes / max(words, 1e-12),
                "raw_bytes_per_word": raw_bytes / max(words, 1e-12),
                "compression": raw_bytes / n_bytes,
            }
        )
        detail[name] = {
            "bytes_by_round": clustered.ledger.bytes_by_round(),
            "wire": clustered.ledger.wire.summary(),
            "uplink_payload_bytes": float(
                sum(m.n_bytes or 0 for m in clustered.ledger.messages if m.to_coordinator)
            ),
            "trace_counters": trace_counters[name],
            # Coordinator peak RSS over this protocol's three runs, from a
            # background ResourceSampler — the capacity-planning column.
            "peak_rss_bytes": peak_rss[name],
        }

    # The committed artifact is the regression baseline (read *before* any
    # REPRO_BENCH_ARTIFACTS rewrite): a protocol whose measured ratio blows
    # past 2x the committed value means untracked payloads are riding the
    # wire again — exactly how the state round-trip bug would resurface.
    baseline = _committed_baseline()
    for row in rows:
        committed = baseline.get(row["protocol"])
        if committed is None:
            continue
        for column in ("bytes_per_word", "raw_bytes_per_word"):
            ceiling = committed.get(column)
            if ceiling is None:
                continue  # pre-codec artifacts carry only the encoded column
            assert row[column] <= BASELINE_HEADROOM * float(ceiling), (
                f"{row['protocol']}: {row[column]:.0f} {column} exceeds "
                f"{BASELINE_HEADROOM}x the committed baseline ({float(ceiling):.0f})"
            )

    measured = {row["protocol"]: row for row in rows}
    # Content-addressed payloads collapse center_g's repeated collapse-matrix
    # shipping: the protocol that used to cost ~2,800 bytes/word must now
    # price within the same band as kcenter's plain site rounds.
    assert (
        measured["center_g"]["bytes_per_word"]
        <= 2.0 * measured["kcenter"]["bytes_per_word"]
    ), "center_g's payload residency regressed: its bytes/word left kcenter's band"
    # And the codec layer must actually earn its column: result frames of
    # the site protocols and center_g's task replies compress >= 2x.
    for name, kind in (
        ("kmedian", "site_result"),
        ("kcenter", "site_result"),
        ("no_shipping", "site_result"),
        ("center_g", "task_result"),
    ):
        ratio = detail[name]["wire"]["compression_by_kind"][kind]
        assert ratio >= 2.0, (
            f"{name}: {kind} frames compress only {ratio:.2f}x (expected >= 2x)"
        )

    # One fault-injected traced kmedian run on its own pool: a host dies
    # mid-round and recovery replays it, so the trace artifact records
    # recovery cost (replay bytes, repinned sites, digest checks) next to
    # the regular wire story — and proves the recovered run still matches
    # the failure-free one bit for bit.
    fault_plan = "kill host=1 round=1 task=1 when=after"
    fault_pool = ClusterBackend(
        n_hosts=N_HOSTS,
        retry=RetryPolicy(max_retries=1),
        fault_plan=FaultPlan.parse(fault_plan),
    )
    try:
        recovered = runners[0][1](fault_pool, trace=True)
    finally:
        fault_pool.close()
    assert recovered.cost == kmedian_base.cost
    assert recovered.ledger.total_words() == kmedian_base.ledger.total_words()
    assert recovered.trace.counter("recovery.host_failures") == 1.0
    assert recovered.trace.counter("recovery.replay_bytes") > 0
    recovery_counters = {
        counter: recovered.trace.counter(counter) for counter in SUMMARY_COUNTERS
    }
    traced_tracer = recovered.trace

    # Time one representative cluster run (pool already warm).
    benchmark.pedantic(lambda: runners[0][1](cluster_pool), rounds=1, iterations=1)

    # Every green benchmark run becomes a regression datapoint: with a store
    # configured (CI exports REPRO_RUN_HISTORY), append one record per
    # protocol for ``python -m repro.obs.history report``/``compare`` —
    # appended only after every assertion above passed, so the history never
    # learns from a broken run.
    history_path = os.environ.get(RUN_HISTORY_ENV)
    if history_path:
        history = RunHistory(history_path)
        for row in rows:
            history.append(
                summary_record(row["protocol"], row,
                               peak_rss_bytes=peak_rss[row["protocol"]])
            )

    record_rows(
        benchmark,
        "cluster_bytes_per_word",
        rows,
        columns=["protocol", "total_words", "total_bytes", "total_raw_bytes",
                 "compression", "bytes_per_word", "raw_bytes_per_word"],
        title="wire bytes vs semantic words (cluster backend, 2 hosts)",
    )

    if os.environ.get("REPRO_BENCH_ARTIFACTS") != "1":
        return
    path = write_bench_json(
        "BENCH_cluster_bytes.json",
        {
            "experiment": "cluster_bytes_per_word",
            "workload": {
                "n_points": int(cluster_workload.n_points),
                "n_nodes": int(cluster_uncertain_workload.instance.n_nodes),
                "k": K, "t": T, "n_sites": N_SITES, "n_hosts": N_HOSTS,
            },
            "rows": rows,
            "detail": detail,
            "recovery": {
                "fault_plan": fault_plan,
                "trace_counters": recovery_counters,
            },
        },
    )
    benchmark.extra_info["artifact"] = path
    trace_path = write_trace_json("BENCH_cluster_trace.json", traced_tracer)
    benchmark.extra_info["trace_artifact"] = trace_path


def _witness_round_task(ctx):
    """A do-nothing round: isolates the fixed per-round dispatch cost."""
    ctx.send_to_coordinator("witness", 0.0, words=1)


@pytest.mark.cluster
@pytest.mark.paper_experiment("cluster_bytes")
def test_resident_state_amortises_repeat_rounds(benchmark, cluster_pool, cluster_workload):
    """The metric is shipped once, not once per round.

    Two identical no-op rounds over the same network: round 1 pays for the
    sticky half (shard + metric view), round 2 reuses the runner-resident
    copy and ships only the per-round scraps.  The measured dispatch ratio
    is the amortisation a multi-round protocol gets for free.
    """
    from repro.distributed.network import StarNetwork
    from repro.runtime import SiteTask, run_site_tasks

    metric = cluster_workload.to_metric()
    shards = partition_balanced(cluster_workload.n_points, N_SITES, rng=7)
    instance = DistributedInstance.from_partition(metric, shards, K, T, "median")

    def two_rounds():
        network = StarNetwork(instance)
        for _ in range(2):
            network.next_round()
            run_site_tasks(
                network,
                [SiteTask(i, _witness_round_task) for i in range(N_SITES)],
                backend=cluster_pool,
            )
        return network

    network = benchmark.pedantic(two_rounds, rounds=1, iterations=1)
    dispatch = {}
    for rec in network.ledger.wire.records:
        if rec.kind == "site_dispatch":
            dispatch[rec.round_index] = dispatch.get(rec.round_index, 0) + rec.n_bytes
    assert 0 < dispatch[2] < dispatch[1]
    benchmark.extra_info["dispatch_bytes_by_round"] = {
        str(r): int(v) for r, v in sorted(dispatch.items())
    }
    benchmark.extra_info["resident_saving_ratio"] = dispatch[1] / dispatch[2]
