"""Ablations of the design choices DESIGN.md calls out.

These are not paper tables; they justify the pieces of Algorithm 1 that make
the ``Õ(sk + t)`` bound possible:

* convex-hull + rank-selection outlier allocation vs. the naive splits
  ``t_i = t/s`` (uniform) and ``t_i = t`` (ship everything, the 1-round cost);
* the geometric evaluation grid ``I = {rho^r}`` vs. the full grid ``{0..t}``;
* ``2k`` local centers (the paper's choice) vs. only ``k``.

Each ablation is run on a workload whose planted outliers are concentrated on
one site — the regime where a wrong budget split is most punishing.
"""

import numpy as np
import pytest

from benchmarks.harness import record_rows
from repro.analysis import evaluate_centers
from repro.baselines import centralized_reference, one_round_protocol
from repro.core import distributed_partial_median, geometric_grid
from repro.core.preclustering import precluster_site
from repro.data import gaussian_mixture_with_outliers
from repro.distributed import DistributedInstance, partition_outliers_concentrated
from repro.metrics import build_cost_matrix
from repro.sequential import local_search_partial


@pytest.fixture(scope="module")
def adversarial_instance():
    workload = gaussian_mixture_with_outliers(
        n_inliers=700, n_outliers=60, n_clusters=4, separation=14.0, rng=777
    )
    metric = workload.to_metric()
    shards = partition_outliers_concentrated(workload.outlier_mask, 6, n_outlier_sites=1, rng=3)
    instance = DistributedInstance.from_partition(metric, shards, 4, 60, "median")
    return workload, metric, instance


@pytest.mark.paper_experiment("ABL-allocation")
def test_ablation_outlier_budget_allocation(benchmark, adversarial_instance):
    """Convex-hull allocation vs uniform split vs ship-everything."""
    workload, metric, instance = adversarial_instance
    k, t, s = instance.k, instance.t, instance.n_sites
    reference = centralized_reference(metric, k, t, objective="median", rng=1)

    def run_all():
        paper = distributed_partial_median(instance, epsilon=0.5, rng=2)
        one_round = one_round_protocol(instance, epsilon=0.5, rng=2)

        # Uniform split: force t_i = t/s by solving each site with that budget
        # and shipping those outliers (simulated through the one-round path on
        # a modified instance budget).
        uniform_budget_instance = DistributedInstance.from_partition(
            metric, instance.shards, k, max(1, t // s), "median"
        )
        uniform = one_round_protocol(uniform_budget_instance, epsilon=0.5, rng=2)
        return paper, one_round, uniform

    paper, one_round, uniform = benchmark.pedantic(run_all, rounds=1, iterations=1)

    def realized(result, budget=None):
        return evaluate_centers(
            metric, result.centers, result.outlier_budget if budget is None else budget,
            objective="median",
        ).cost

    rows = [
        {
            "allocation": "convex hull + rank selection (Algorithm 1)",
            "words": paper.total_words,
            "realized_cost": realized(paper),
            "cost/reference": realized(paper) / reference.cost,
        },
        {
            "allocation": "ship t per site (1-round)",
            "words": one_round.total_words,
            "realized_cost": realized(one_round),
            "cost/reference": realized(one_round) / reference.cost,
        },
        {
            "allocation": "uniform split t/s per site",
            "words": uniform.total_words,
            # Evaluate with the same global budget as Algorithm 1 for fairness.
            "realized_cost": realized(uniform, paper.outlier_budget),
            "cost/reference": realized(uniform, paper.outlier_budget) / reference.cost,
        },
    ]
    record_rows(benchmark, "Ablation-allocation", rows,
                title="Ablation: outlier budget allocation (outliers concentrated on one site)")

    # The paper's allocation matches the ship-everything quality at a fraction
    # of the words, and beats the uniform split on quality.
    assert rows[0]["realized_cost"] <= 1.3 * rows[1]["realized_cost"] + 1e-9
    assert rows[0]["words"] < rows[1]["words"]
    assert rows[0]["realized_cost"] <= rows[2]["realized_cost"] * 1.05 + 1e-9


@pytest.mark.paper_experiment("ABL-grid")
def test_ablation_geometric_vs_full_grid(benchmark, adversarial_instance):
    """The O(log t) geometric grid loses little cost but saves many local solves."""
    workload, metric, instance = adversarial_instance
    t = instance.t
    shard = instance.shards[0]  # the outlier-heavy site
    costs = build_cost_matrix(metric, shard, shard, "median")

    def run_both():
        geometric = precluster_site(costs, 2 * instance.k, t, rho=2.0, rng=0)
        full = precluster_site(costs, 2 * instance.k, t, grid=np.arange(t + 1), rng=0)
        return geometric, full

    geometric, full = benchmark.pedantic(run_both, rounds=1, iterations=1)

    grid_q = geometric_grid(t, rho=2.0, upper=shard.size)
    rows = [
        {
            "grid": "geometric (paper)",
            "local_solves": geometric.grid.size,
            "profile_words": geometric.profile.words,
            "cost_at_t": geometric.profile(t),
        },
        {
            "grid": "full {0..t}",
            "local_solves": full.grid.size,
            "profile_words": full.profile.words,
            "cost_at_t": full.profile(t),
        },
    ]
    record_rows(benchmark, "Ablation-grid", rows, title="Ablation: geometric vs full local grid")

    assert geometric.grid.size == grid_q.size
    assert geometric.grid.size <= full.grid.size / 3
    # The hull built from the geometric grid tracks the full curve closely at
    # the operating points (within the paper's constant-factor slack).
    for q in (0, t // 2, t):
        assert geometric.profile(q) <= 2.0 * full.profile(q) + 1e-6 + 0.05 * full.profile(0)


@pytest.mark.paper_experiment("ABL-2k")
def test_ablation_local_center_budget(benchmark, adversarial_instance):
    """2k local centers (paper) vs k local centers at the sites."""
    workload, metric, instance = adversarial_instance
    reference = centralized_reference(metric, instance.k, instance.t, objective="median", rng=1)

    def run_both():
        with_2k = distributed_partial_median(instance, epsilon=0.5, local_center_factor=2, rng=4)
        with_1k = distributed_partial_median(instance, epsilon=0.5, local_center_factor=1, rng=4)
        return with_2k, with_1k

    with_2k, with_1k = benchmark.pedantic(run_both, rounds=1, iterations=1)

    cost_2k = evaluate_centers(metric, with_2k.centers, with_2k.outlier_budget, objective="median").cost
    cost_1k = evaluate_centers(metric, with_1k.centers, with_1k.outlier_budget, objective="median").cost
    rows = [
        {"local_centers": "2k (paper)", "words": with_2k.total_words, "realized_cost": cost_2k,
         "cost/reference": cost_2k / reference.cost},
        {"local_centers": "k", "words": with_1k.total_words, "realized_cost": cost_1k,
         "cost/reference": cost_1k / reference.cost},
    ]
    record_rows(benchmark, "Ablation-local-centers", rows,
                title="Ablation: local center budget at the sites")

    # Doubling the local centers costs a bit more communication but never
    # hurts quality by much; usually it helps on cluster-skewed shards.
    assert with_2k.total_words >= with_1k.total_words
    assert cost_2k <= 1.2 * cost_1k + 1e-9
