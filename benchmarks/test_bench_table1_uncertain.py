"""Table 1, row 5 — uncertain median / means / center-pp.

Paper claim: the deterministic bounds carry over to uncertain data — same
``Õ((sk + t) B)`` communication and 2 rounds — with the site time increased
by ``O(n_i T)`` for the 1-median collapses (Theorem 5.6, Algorithm 3).

The benchmark runs Algorithm 3 for all three per-node objectives on the
shared uncertain workload, reports the exact assigned cost (the objectives
decompose per node, so no sampling is needed) against a centralized
compressed-graph solve, and verifies that outlier nodes travel as collapsed
``(y_j, l_j)`` pairs rather than full distributions.
"""

import numpy as np
import pytest

from benchmarks.harness import record_rows
from repro.analysis import approximation_ratio
from repro.core import distributed_uncertain_clustering
from repro.distributed import UncertainDistributedInstance, partition_balanced
from repro.sequential import local_search_partial
from repro.uncertain import exact_assigned_cost


def _centralized_compressed_reference(uncertain, k, t, objective, rng=0):
    graph = uncertain.compressed_graph(objective)
    nodes = np.arange(uncertain.n_nodes)
    costs = graph.demand_facility_costs(nodes, nodes)
    if objective == "means":
        base = uncertain.ground_metric.pairwise(graph.anchor_indices, graph.anchor_indices)
        costs = base * base + graph.collapse_costs[:, None]
    solution = local_search_partial(
        costs, k, t, objective="means" if objective == "means" else "median", rng=rng, max_iter=60
    )
    assignment = {
        int(j): int(graph.anchor_indices[int(solution.assignment[j])])
        for j in solution.served_indices
    }
    return exact_assigned_cost(uncertain, assignment, objective)


@pytest.mark.paper_experiment("T1-uncertain")
@pytest.mark.parametrize("objective", ["median", "means", "center"])
def test_table1_uncertain(benchmark, bench_uncertain_workload, objective):
    uncertain = bench_uncertain_workload.instance
    s, k, t = 3, 3, 12
    shards = partition_balanced(uncertain.n_nodes, s, rng=7)
    instance = UncertainDistributedInstance.from_partition(uncertain, shards, k, t, objective)

    result = benchmark.pedantic(
        distributed_uncertain_clustering,
        args=(instance,),
        kwargs={"epsilon": 0.5, "rng": 7},
        rounds=2,
        iterations=1,
    )

    assignment = result.metadata["node_assignment"]
    cost = exact_assigned_cost(uncertain, assignment, objective)
    reference = _centralized_compressed_reference(uncertain, k, t, objective, rng=8)
    ratio = approximation_ratio(cost, reference)
    B = instance.words_per_point()
    words_per_skt = result.total_words / ((s * k + t) * B)
    naive_words = uncertain.encoding_words()

    rows = [
        {
            "objective": objective,
            "s": s,
            "k": k,
            "t": t,
            "exact_cost": cost,
            "approx_ratio_vs_central": ratio,
            "total_words": result.total_words,
            "words/(sk+t)B": words_per_skt,
            "words/ship_all_distributions": result.total_words / naive_words,
            "rounds": result.rounds,
            "site_time_max_s": result.site_time_max,
        }
    ]
    record_rows(benchmark, f"Table1-uncertain-{objective}", rows,
                title=f"Table 1 (uncertain row, {objective}): Algorithm 3")

    assert result.rounds == 2
    assert ratio <= 4.0
    assert words_per_skt <= 12.0
    # The whole point of the compression: far cheaper than shipping distributions.
    assert result.total_words < 0.6 * naive_words
