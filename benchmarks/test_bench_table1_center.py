"""Table 1, row 4 — distributed (k, t)-center.

Paper claims: O(1) approximation with exactly t ignored points, 2 rounds,
``Õ((sk + t) B)`` communication, site time ``Õ((k + t) n_i)`` (linear in the
shard size, unlike the quadratic median preclustering) and coordinator time
``Õ((sk + t)^2)``.
"""

import pytest

from benchmarks.harness import record_rows
from repro.analysis import approximation_ratio, evaluate_centers
from repro.baselines import centralized_reference
from repro.core import distributed_partial_center, distributed_partial_median
from repro.distributed import DistributedInstance, partition_balanced


@pytest.mark.paper_experiment("T1-center")
@pytest.mark.parametrize("s,k", [(4, 3), (8, 5)])
def test_table1_center(benchmark, bench_metric, bench_workload, s, k):
    t = 60
    reference = centralized_reference(bench_metric, k, t, objective="center")
    shards = partition_balanced(bench_workload.n_points, s, rng=5)
    instance = DistributedInstance.from_partition(bench_metric, shards, k, t, "center")

    result = benchmark(distributed_partial_center, instance, rng=5)

    realized = evaluate_centers(bench_metric, result.centers, t, objective="center")
    ratio = approximation_ratio(realized.cost, reference.cost)
    words_per_skt = result.total_words / ((s * k + t) * instance.words_per_point())
    rows = [
        {
            "s": s,
            "k": k,
            "t": t,
            "approx_ratio": ratio,
            "ignored": int(result.outlier_budget),
            "total_words": result.total_words,
            "words/(sk+t)B": words_per_skt,
            "rounds": result.rounds,
            "site_time_max_s": result.site_time_max,
            "coord_time_s": result.coordinator_time,
        }
    ]
    record_rows(benchmark, "Table1-center", rows, title="Table 1 (center row): Algorithm 2")

    assert result.rounds == 2
    assert result.outlier_budget == t  # exactly t, not (1+eps)t
    assert ratio <= 4.0
    assert words_per_skt <= 12.0


@pytest.mark.paper_experiment("T1-center-site-time")
def test_table1_center_site_time_linear_vs_median_quadratic(benchmark, bench_metric, bench_workload):
    """The center preclustering is ~linear per site while median is ~quadratic.

    Table 1 lists site time Õ((k+t) n_i) for center and Õ(n_i^2) for median;
    with n_i ~ 300 the Gonzalez pass should be far cheaper than the local
    search grid solves.
    """
    s, k, t = 4, 3, 60
    shards = partition_balanced(bench_workload.n_points, s, rng=6)
    center_instance = DistributedInstance.from_partition(bench_metric, shards, k, t, "center")
    median_instance = DistributedInstance.from_partition(bench_metric, shards, k, t, "median")

    def run_both():
        c = distributed_partial_center(center_instance, rng=6)
        m = distributed_partial_median(median_instance, rng=6)
        return c, m

    center_result, median_result = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = [
        {"objective": "center", "site_time_max_s": center_result.site_time_max},
        {"objective": "median", "site_time_max_s": median_result.site_time_max},
    ]
    record_rows(benchmark, "Table1-center-vs-median-site-time", rows)
    assert center_result.site_time_max < median_result.site_time_max
