"""Fused reduction plans + prefetch — pass counts, tile stats and wall-clock.

This is the first machine-readable entry in the perf trajectory: it measures
the fused k-center radius probe (one streaming pass seeds every radius guess
of a probe batch, the greedy then only re-reads newly covered rows) against
the classic phrasing (one full ``count_within`` stream per greedy step), and
writes ``BENCH_blocked_plan.json`` with the pass counts, the plan's tile
statistics and the measured wall-clock of both paths.

Pass counts come from :class:`~repro.metrics.plan.CountingSource`, so the
before/after *pass* ratio is deterministic and asserted; wall-clock numbers
are recorded for the trajectory but never asserted (the CI box is 1-core).

The JSON artifact is only (re)written when ``REPRO_BENCH_ARTIFACTS=1`` is
set — a plain test run (or CI under ``--benchmark-disable``, where the
timings would be meaningless zeros) never dirties the committed baseline::

    REPRO_BENCH_ARTIFACTS=1 pytest benchmarks/test_bench_blocked_plan.py
"""

import os
import time

import numpy as np
import pytest

from benchmarks.harness import record_rows, write_bench_json
from repro.data import gaussian_mixture_with_outliers
from repro.metrics.blocked import MemmapCostShard, count_within
from repro.metrics.plan import CountingSource, ReductionPlan
from repro.sequential import kcenter_with_outliers
from repro.sequential.kcenter_outliers import probe_gains

K = 6
T = 40
BUDGET = 64 * 2**10  # 64 KiB: far below the matrix, so tiles genuinely stream
N_RADII = 4  # one probe batch


@pytest.fixture(scope="module")
def probe_workload():
    workload = gaussian_mixture_with_outliers(
        n_inliers=760, n_outliers=40, n_clusters=4, dim=2,
        separation=14.0, rng=20170727,
    )
    matrix = workload.to_metric().full_matrix()
    radii = np.quantile(matrix, np.linspace(0.15, 0.85, N_RADII))
    weights = np.ones(matrix.shape[0])
    return matrix, radii, weights


def _old_path_probe(matrix, radii, weights, k):
    """The pre-fusion radius probe: per radius, one initial gains pass plus
    one full gains re-stream on every greedy step (``k + 1`` passes)."""
    from repro.metrics.blocked import read_block

    n = matrix.shape[0]
    all_rows = np.arange(n)
    for radius in radii:
        remaining = weights.copy()
        count_within(matrix, float(radius), weights=remaining, memory_budget=BUDGET)
        for _ in range(k):
            if not np.any(remaining > 0):
                break
            gain = count_within(
                matrix, float(radius), weights=remaining, memory_budget=BUDGET
            )
            best = int(np.argmax(gain))
            column = read_block(matrix, all_rows, [best])[:, 0]
            remaining[column <= 3.0 * float(radius)] = 0.0


def _fused_probe(matrix, radii, weights, k):
    from repro.sequential.kcenter_outliers import _probe_batch

    _probe_batch(matrix, weights, k, np.asarray(radii, dtype=float), 3.0,
                 memory_budget=BUDGET, prefetch=False)


@pytest.mark.paper_experiment("blocked_plan")
def test_fused_probe_pass_counts_and_wall_clock(benchmark, probe_workload):
    matrix, radii, weights = probe_workload
    n, m = matrix.shape

    # ------------------------------------------------------------------
    # Deterministic pass counts (asserted).
    # ------------------------------------------------------------------
    fused_src = CountingSource(matrix)
    _fused_probe(fused_src, radii, weights, K)
    fused_passes = fused_src.passes

    old_src = CountingSource(matrix)
    _old_path_probe(old_src, radii, weights, K)
    old_passes = old_src.passes

    # The fused probe seeds every radius from ONE pass; the old path pays
    # k + 1 passes per radius (plus the chosen columns, a rounding error).
    assert fused_passes < old_passes / 3
    assert old_passes >= N_RADII * K  # k re-streams per radius at minimum

    # Tile statistics of the fused gains plan itself.
    plan = ReductionPlan(matrix, memory_budget=BUDGET, prefetch=False)
    plan.add_count_within(radii, weights=weights)
    plan.execute()
    assert plan.stats.passes == pytest.approx(1.0)

    # ------------------------------------------------------------------
    # Wall-clock (recorded, never asserted) — fused path through
    # pytest-benchmark, old path timed once for the before/after table.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    _old_path_probe(matrix, radii, weights, K)
    old_seconds = time.perf_counter() - start

    benchmark.pedantic(
        _fused_probe, args=(matrix, radii, weights, K), rounds=3, iterations=1
    )
    fused_seconds = float(benchmark.stats.stats.mean) if benchmark.stats else 0.0

    rows = [
        {
            "path": "old (k+1 streams/radius)",
            "full_passes": round(old_passes, 2),
            "cells_read": old_src.cells_read,
            "wall_s": round(old_seconds, 4),
        },
        {
            "path": "fused plan + incremental",
            "full_passes": round(fused_passes, 2),
            "cells_read": fused_src.cells_read,
            "wall_s": round(fused_seconds, 4),
        },
    ]
    record_rows(
        benchmark, "blocked_plan_fused_probe", rows,
        columns=["path", "full_passes", "cells_read", "wall_s"],
        title=f"fused k-center radius probe (n={n}, m={m}, k={K}, {N_RADII} radii, budget=64KB)",
    )

    if os.environ.get("REPRO_BENCH_ARTIFACTS") != "1":
        return
    path = write_bench_json(
        "BENCH_blocked_plan.json",
        {
            "experiment": "blocked_plan_fused_probe",
            "workload": {"n": n, "m": m, "k": K, "t": T, "n_radii": N_RADII,
                         "memory_budget": BUDGET},
            "pass_counts": {
                "old_full_passes": old_passes,
                "fused_full_passes": fused_passes,
                "old_cells_read": old_src.cells_read,
                "fused_cells_read": fused_src.cells_read,
                "speedup_passes": old_passes / max(fused_passes, 1e-12),
            },
            "tile_stats": plan.stats.as_dict(),
            "wall_clock": {
                "old_seconds": old_seconds,
                "fused_seconds": fused_seconds,
            },
        },
    )
    benchmark.extra_info["artifact"] = path


@pytest.mark.paper_experiment("blocked_plan")
def test_fused_kcenter_end_to_end_parity_and_prefetch(benchmark, probe_workload, tmp_path):
    """End-to-end fused solve on a memmap shard: parity + recorded wall-clock."""
    matrix, _, _ = probe_workload
    shard = MemmapCostShard.create(matrix.shape, workdir=str(tmp_path))
    shard.write_rows(slice(0, matrix.shape[0]), matrix)
    mm = shard.finalize()

    dense_sol = kcenter_with_outliers(matrix, K, T)

    def fused_run():
        return kcenter_with_outliers(
            mm, K, T, memory_budget=BUDGET, prefetch=True, probe_batch=3
        )

    sol = benchmark.pedantic(fused_run, rounds=2, iterations=1)
    np.testing.assert_array_equal(dense_sol.centers, sol.centers)
    assert dense_sol.cost == sol.cost
    benchmark.extra_info["experiment"] = "blocked_plan_kcenter_memmap"
    benchmark.extra_info["probe_rounds"] = sol.metadata["probe_rounds"]
