"""Figure 1 — the compressed graph ("clique with tentacles") and its cost equivalence.

Figure 1 of the paper depicts the compressed graph of Definition 5.2: the
1-medians ``y_j`` form a clique (with metric distances as weights) and every
node's demand vertex ``p_j`` hangs off its own 1-median by a tentacle of
weight ``l_j`` (the collapse cost).  Lemmas 5.3/5.4 state that clustering the
compressed graph is equivalent to the original uncertain problem up to
constant factors (5 and 2), and the surrounding text warns that clustering
the bare 1-medians — dropping the tentacles — is *not* enough.

The benchmark (a) reconstructs the structure and verifies its defining
properties, and (b) measures the three costs on the shared uncertain
workload: solving on the compressed graph, solving on the bare anchors, and
the per-node collapse lower bound, checking the Lemma 5.3/5.4 inequalities.
"""

import numpy as np
import pytest

from benchmarks.harness import record_rows
from repro.sequential import local_search_partial
from repro.uncertain import exact_assigned_cost


@pytest.mark.paper_experiment("FIG-1")
def test_figure1_compressed_graph_structure_and_equivalence(benchmark, bench_uncertain_workload):
    uncertain = bench_uncertain_workload.instance
    k, t = 3, 12
    nodes = np.arange(uncertain.n_nodes)

    def build_and_solve():
        graph = uncertain.compressed_graph("median")
        compressed_costs = graph.demand_facility_costs(nodes, nodes)
        bare_costs = uncertain.ground_metric.pairwise(graph.anchor_indices, graph.anchor_indices)
        sol_compressed = local_search_partial(compressed_costs, k, t, rng=0, max_iter=50)
        sol_bare = local_search_partial(bare_costs, k, t, rng=0, max_iter=50)
        return graph, sol_compressed, sol_bare

    graph, sol_compressed, sol_bare = benchmark.pedantic(build_and_solve, rounds=1, iterations=1)

    # --- Structural reproduction of Figure 1 -------------------------------
    # One tentacle per node, attached to its own anchor, with weight l_j >= 0.
    assert graph.n_nodes == uncertain.n_nodes
    assert np.all(graph.collapse_costs >= 0)
    for j in (0, 7, 23):
        # d_G(p_j, y_j) is exactly the tentacle weight ...
        assert graph.demand_to_point(j, graph.facility_point_index(j)) == pytest.approx(
            graph.collapse_costs[j]
        )
        # ... and reaching any other ground point goes through the tentacle.
        other = (graph.facility_point_index(j) + 5) % uncertain.n_ground_points
        assert graph.demand_to_point(j, other) >= graph.collapse_costs[j]

    # --- Cost equivalence (Lemmas 5.3 / 5.4) --------------------------------
    def realize(sol):
        return {
            int(j): int(graph.anchor_indices[int(sol.assignment[j])])
            for j in sol.served_indices
        }

    cost_compressed_graph = float(sol_compressed.cost)
    exact_from_compressed = exact_assigned_cost(uncertain, realize(sol_compressed), "median")
    exact_from_bare = exact_assigned_cost(uncertain, realize(sol_bare), "median")
    collapse_lower_bound = float(np.sort(graph.collapse_costs)[: uncertain.n_nodes - t].sum())

    rows = [
        {
            "quantity": "compressed-graph objective (what the algorithm optimises)",
            "value": cost_compressed_graph,
        },
        {"quantity": "true uncertain cost of that solution (Lemma 5.4 realization)", "value": exact_from_compressed},
        {"quantity": "true uncertain cost when tentacles are ignored (bare 1-medians)", "value": exact_from_bare},
        {"quantity": "sum of smallest n-t collapse costs (lower bound on any solution)", "value": collapse_lower_bound},
    ]
    record_rows(benchmark, "Figure1-compressed-graph", rows,
                title="Figure 1 / Lemmas 5.3-5.4: compressed graph cost equivalence")

    # Lemma 5.4 direction: realizing a compressed-graph solution costs at most
    # 2x its compressed objective.
    assert exact_from_compressed <= 2.0 * cost_compressed_graph + 1e-9
    # Lemma 5.3 direction (as a sanity envelope): the compressed objective is
    # within a constant factor of the realized cost.
    assert cost_compressed_graph <= 5.0 * exact_from_compressed + 1e-9
    # The collapse costs are a hard lower bound on any assigned clustering.
    assert exact_from_compressed >= collapse_lower_bound - 1e-9
    # Dropping the tentacles cannot produce a meaningfully better true cost
    # (the paper's warning: "we cannot just cluster the {y_j}").
    assert exact_from_compressed <= 1.25 * exact_from_bare + 1e-9
